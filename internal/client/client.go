// Package client is the Go companion client for xtcd. A Pool dials a fixed
// set of connections and demultiplexes pipelined responses by request id;
// sessions are striped across the pool's connections (a session lives on
// exactly one connection — the server binds it there) and expose the node
// manager's operation set with the same error sentinels, so code written
// against the local engine ports to the wire by swapping the receiver.
//
// Connection lifecycle: each connection heartbeats the server so server-side
// keep-alive enforcement sees live clients, and every slot in the pool is
// self-healing — when its connection dies, the next use re-dials with
// jittered capped backoff (client.redials) and sessions on it transparently
// re-establish themselves (client.reconnects, OpResumeSession). Only the
// in-flight transaction is lost: the interrupted operation returns an error
// that satisfies node.IsAbortWorthy, so retry loops built for deadlock
// aborts absorb a server bounce unchanged.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wire"
)

// ErrBusy is returned for StatusBusy rejections (admission control or a full
// session queue); the caller may back off and retry.
var ErrBusy = errors.New("client: server busy")

// ErrShutdown is returned when the server is draining or the connection died.
var ErrShutdown = errors.New("client: server shutting down")

// ErrTimeout is returned when a deadline-bounded round trip got no response
// in time; the offending connection is evicted (closed) so the next use
// re-dials rather than trusting a stalled peer.
var ErrTimeout = errors.New("client: request timed out")

// ErrNoSession is returned when the server no longer knows the session the
// request named — reaped for idleness, evicted by a resume, or torn down by
// a drain while the connection stayed up. Sessions recover from it
// transparently (resume), so callers normally see ErrConnLost instead.
var ErrNoSession = errors.New("client: session no longer exists on server")

// ErrConnLost is in the chain of errors returned for operations interrupted
// by a connection loss after the session was transparently resumed: the
// in-flight transaction is gone, but the session handle is live again.
// These errors satisfy node.IsAbortWorthy — abort and retry, exactly like a
// deadlock victim. Commits are exempt from the ambiguity: the resume's fate
// report (wire.ResumeResult) says whether an interrupted commit landed, and
// Txn.Commit returns nil when it did — so a commit either returns nil (it
// landed, once) or an error chain containing ErrConnLost (it rolled back,
// unless the fate was unknowable, e.g. the old server process is gone).
var ErrConnLost = errors.New("client: connection lost")

// abortWorthyError marks an error chain abort-worthy for node.IsAbortWorthy
// without the node package importing this one. Used for connection losses
// (ErrConnLost, after a successful session resume) and for server-side
// cancellations (a draining or reaping server canceled the request — the
// transaction is being torn down and retrying it fresh is the only move).
type abortWorthyError struct{ err error }

func (e *abortWorthyError) Error() string { return e.err.Error() }
func (e *abortWorthyError) Unwrap() error { return e.err }

// AbortWorthy opts the failure into node.IsAbortWorthy.
func (e *abortWorthyError) AbortWorthy() bool { return true }

// Options configure a Pool.
type Options struct {
	// Conns is the number of TCP connections to stripe sessions over
	// (default 1).
	Conns int
	// DialTimeout bounds each dial (default 5s).
	DialTimeout time.Duration
	// RequestDeadline, when positive, is stamped on every request as its
	// deadline-ms budget so the server bounds lock waits on our behalf.
	RequestDeadline time.Duration
	// CallTimeout, when positive, bounds each round trip client-side; a
	// connection that produces no response in time is evicted and the call
	// fails with ErrTimeout. Leave zero when requests may legitimately wait
	// in long lock queues without a RequestDeadline.
	CallTimeout time.Duration
	// PingTimeout bounds each per-connection Ping round trip (default 2s) —
	// one stalled connection must not hang the health check; it is evicted
	// instead.
	PingTimeout time.Duration
	// HeartbeatInterval is the keep-alive cadence each connection ticks
	// OpHeartbeat at (default 10s, negative disables). Keep it under the
	// server's KeepAliveInterval so idle-but-healthy clients are not reaped.
	HeartbeatInterval time.Duration
	// DisableReconnect turns off redial and session resume: a dead
	// connection stays dead and its requests fail with ErrShutdown (the
	// pre-resilience behavior, still wanted by teardown tests).
	DisableReconnect bool
	// RedialBackoff is the base of the jittered exponential backoff between
	// re-dial attempts (default 25ms). The sleep is jittered to 50-150% and
	// doubles per attempt up to RedialMaxBackoff — the same shape as the
	// TaMix restart backoff.
	RedialBackoff time.Duration
	// RedialMaxBackoff caps the redial backoff doubling (default 1s).
	RedialMaxBackoff time.Duration
	// RedialBudget bounds how long one operation blocks on redial/resume
	// before giving up (default 15s). A server bounce shorter than this is
	// absorbed; a longer outage surfaces as a redial failure.
	RedialBudget time.Duration
	// Dialer overrides the TCP dial (fault-injection harnesses wrap
	// connections here); net.DialTimeout when nil.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Metrics, when non-nil, receives the client.* instruments.
	Metrics *metrics.Registry
}

// Pool is a set of self-healing connections to one xtcd server.
type Pool struct {
	opts  Options
	addr  string
	slots []*slot
	next  atomic.Uint64

	mu     sync.Mutex
	closed bool

	mLatency    *metrics.Histogram
	mReconnects *metrics.Counter
	mRedials    *metrics.Counter
}

// slot is one self-healing connection position in the pool: it holds the
// current connection and re-dials (with backoff) when it finds it dead.
type slot struct {
	p  *Pool
	mu sync.Mutex
	c  *Conn
}

// Dial connects opts.Conns connections to addr.
func Dial(addr string, opts Options) (*Pool, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.PingTimeout <= 0 {
		opts.PingTimeout = 2 * time.Second
	}
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 10 * time.Second
	}
	if opts.RedialBackoff <= 0 {
		opts.RedialBackoff = 25 * time.Millisecond
	}
	if opts.RedialMaxBackoff <= 0 {
		opts.RedialMaxBackoff = time.Second
	}
	if opts.RedialBudget <= 0 {
		opts.RedialBudget = 15 * time.Second
	}
	p := &Pool{
		opts:        opts,
		addr:        addr,
		mLatency:    opts.Metrics.Histogram("client.request_ns"),
		mReconnects: opts.Metrics.Counter("client.reconnects"),
		mRedials:    opts.Metrics.Counter("client.redials"),
	}
	for i := 0; i < opts.Conns; i++ {
		sl := &slot{p: p}
		c, err := p.dial()
		if err != nil {
			p.Close()
			return nil, err
		}
		sl.c = c
		p.slots = append(p.slots, sl)
	}
	return p, nil
}

// dial opens one connection (through Options.Dialer when set) and starts
// its reader and heartbeat goroutines.
func (p *Pool) dial() (*Conn, error) {
	dial := p.opts.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(p.addr, p.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{nc: nc, pending: map[uint32]chan wire.Msg{}, hbStop: make(chan struct{})}
	go c.readLoop()
	if p.opts.HeartbeatInterval > 0 {
		go c.heartbeatLoop(p.opts.HeartbeatInterval)
	}
	return c, nil
}

// Close tears down every connection; outstanding requests fail with
// ErrShutdown and no redials happen afterwards.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	for _, sl := range p.slots {
		sl.mu.Lock()
		c := sl.c
		sl.mu.Unlock()
		if c != nil {
			c.close(ErrShutdown)
		}
	}
}

// isClosed reports whether Close has been called.
func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// backoffSleep sleeps one jittered step (50-150% of cur) and returns the
// next step, doubled up to cap.
func backoffSleep(cur, cap time.Duration) time.Duration {
	d := cur/2 + time.Duration(rand.Int63n(int64(cur)))
	time.Sleep(d)
	if cur *= 2; cur > cap {
		cur = cap
	}
	return cur
}

// get returns the slot's connection, re-dialing with jittered capped
// backoff (bounded by RedialBudget) when it is dead. Concurrent callers
// coalesce on one redial.
func (sl *slot) get() (*Conn, error) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.c != nil && !sl.c.isClosed() {
		return sl.c, nil
	}
	p := sl.p
	if p.isClosed() {
		return nil, ErrShutdown
	}
	if p.opts.DisableReconnect {
		if sl.c != nil {
			return nil, sl.c.cause()
		}
		return nil, ErrShutdown
	}
	backoff := p.opts.RedialBackoff
	deadline := time.Now().Add(p.opts.RedialBudget)
	for {
		p.mRedials.Add(1)
		c, err := p.dial()
		if err == nil {
			sl.c = c
			return c, nil
		}
		if p.isClosed() {
			return nil, ErrShutdown
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("client: redial %s: %w", p.addr, err)
		}
		backoff = backoffSleep(backoff, p.opts.RedialMaxBackoff)
	}
}

// slot picks the next slot round-robin.
func (p *Pool) slot() *slot {
	return p.slots[p.next.Add(1)%uint64(len(p.slots))]
}

// conn picks the next live connection round-robin, re-dialing its slot if
// needed.
func (p *Pool) conn() (*Conn, error) {
	return p.slot().get()
}

// Ping round-trips a frame on every currently-connected slot, each under
// PingTimeout. A connection that stalls past the deadline (or fails) is
// evicted — closed, so the slot's next use re-dials — and reported; the
// remaining connections are still checked.
func (p *Pool) Ping() error {
	var errs []error
	for i, sl := range p.slots {
		sl.mu.Lock()
		c := sl.c
		sl.mu.Unlock()
		if c == nil || c.isClosed() {
			errs = append(errs, fmt.Errorf("client: conn %d: %w", i, ErrShutdown))
			continue
		}
		if _, _, err := c.roundTripTimeout(wire.OpPing, 0, 0, []byte("ping"), p.opts.PingTimeout); err != nil {
			errs = append(errs, fmt.Errorf("client: conn %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Stats fetches the server-side engine counters for a protocol.
func (p *Pool) Stats(protocol string) (wire.Stats, error) {
	c, err := p.conn()
	if err != nil {
		return wire.Stats{}, err
	}
	_, body, err := c.roundTrip(wire.OpStats, 0, 0, wire.AppendString(nil, protocol))
	if err != nil {
		return wire.Stats{}, err
	}
	r := wire.NewReader(body)
	st := r.Stats()
	return st, r.Err()
}

// Audit runs the server-side integrity audits (document Verify plus lock
// LeakCheck) for a protocol — the remote equivalent of the checks a local
// TaMix run finishes with.
func (p *Pool) Audit(protocol string) error {
	c, err := p.conn()
	if err != nil {
		return err
	}
	_, _, err = c.roundTrip(wire.OpAudit, 0, 0, wire.AppendString(nil, protocol))
	return err
}

// Conn is one TCP connection: a write lock serializing frames out, a reader
// goroutine routing responses to waiting requests by id, and a heartbeat
// goroutine keeping the server's keep-alive check fed.
type Conn struct {
	nc      net.Conn
	wmu     sync.Mutex
	nextReq atomic.Uint32
	hbStop  chan struct{}

	mu      sync.Mutex
	pending map[uint32]chan wire.Msg
	err     error
	closed  bool
}

// close fails the connection: every in-flight and future request returns
// cause.
func (c *Conn) close(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = cause
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	close(c.hbStop)
	c.nc.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// isClosed reports whether the connection has died.
func (c *Conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// cause returns the close cause (ErrShutdown-based) or nil while live.
func (c *Conn) cause() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// readLoop routes response frames to their waiters.
func (c *Conn) readLoop() {
	for {
		payload, err := wire.ReadFrame(c.nc)
		if err != nil {
			c.close(fmt.Errorf("%w: %v", ErrShutdown, err))
			return
		}
		m, err := wire.DecodeMsg(payload)
		if err != nil {
			c.close(fmt.Errorf("%w: %v", ErrShutdown, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[m.Req]
		delete(c.pending, m.Req)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// heartbeatLoop ticks OpHeartbeat frames until the connection closes. The
// responses are fire-and-forget (no pending entry; the reader drops them),
// but a failed write still detects a dead connection early.
func (c *Conn) heartbeatLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
			payload := wire.AppendMsg(nil, wire.Msg{Op: wire.OpHeartbeat, Req: c.nextReq.Add(1)})
			c.wmu.Lock()
			err := wire.WriteFrame(c.nc, payload)
			c.wmu.Unlock()
			if err != nil {
				c.close(fmt.Errorf("%w: heartbeat: %v", ErrShutdown, err))
				return
			}
		}
	}
}

// roundTrip sends one request and blocks for its response, returning the
// result portion of the body (after the status byte). Non-OK statuses are
// surfaced as the matching sentinel errors.
func (c *Conn) roundTrip(op wire.Op, session uint32, deadlineMS uint32, body []byte) (wire.Status, []byte, error) {
	return c.roundTripTimeout(op, session, deadlineMS, body, 0)
}

// roundTripTimeout is roundTrip with a client-side wall bound: when timeout
// is positive and no response arrives in time, the connection is evicted
// (closed — its response demux can no longer be trusted to be prompt) and
// the call fails with ErrTimeout.
func (c *Conn) roundTripTimeout(op wire.Op, session uint32, deadlineMS uint32, body []byte, timeout time.Duration) (wire.Status, []byte, error) {
	req := c.nextReq.Add(1)
	ch := make(chan wire.Msg, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return wire.StatusShutdown, nil, err
	}
	c.pending[req] = ch
	c.mu.Unlock()

	payload := wire.AppendMsg(nil, wire.Msg{
		Op: op, Session: session, Req: req, DeadlineMS: deadlineMS, Body: body,
	})
	c.wmu.Lock()
	err := wire.WriteFrame(c.nc, payload)
	c.wmu.Unlock()
	if err != nil {
		c.close(fmt.Errorf("%w: %v", ErrShutdown, err))
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
		return wire.StatusShutdown, nil, c.cause()
	}

	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case m, ok := <-ch:
		if !ok {
			return wire.StatusShutdown, nil, c.cause()
		}
		if len(m.Body) == 0 {
			return wire.StatusErr, nil, fmt.Errorf("client: empty response body for %s", op)
		}
		status := wire.Status(m.Body[0])
		rest := m.Body[1:]
		if status != wire.StatusOK {
			return status, nil, statusError(status, rest)
		}
		return status, rest, nil
	case <-timeoutCh:
		terr := fmt.Errorf("%w: %s after %v", ErrTimeout, op, timeout)
		c.close(fmt.Errorf("%w: %v", ErrShutdown, terr))
		return wire.StatusShutdown, nil, terr
	}
}

// statusError converts a non-OK response to an error wrapping the sentinel
// the local engine would have returned, so errors.Is-based control flow
// (node.IsAbortWorthy, vanished-target checks) works unchanged over the
// wire.
func statusError(status wire.Status, body []byte) error {
	msg := wire.NewReader(body).String()
	if msg == "" {
		msg = status.String()
	}
	var base error
	switch status {
	case wire.StatusDeadlock:
		base = lock.ErrDeadlockVictim
	case wire.StatusTimeout:
		base = lock.ErrLockTimeout
	case wire.StatusCanceled:
		base = lock.ErrCanceled
	case wire.StatusNotFound:
		base = storage.ErrNodeNotFound
	case wire.StatusTxDone:
		base = tx.ErrTxnDone
	case wire.StatusBusy:
		base = ErrBusy
	case wire.StatusShutdown:
		base = ErrShutdown
	case wire.StatusNoSession:
		base = ErrNoSession
	default:
		return fmt.Errorf("client: server error: %s", msg)
	}
	err := fmt.Errorf("%w: %s", base, msg)
	if status == wire.StatusCanceled {
		// The server canceled the request — it is draining or reaping this
		// session and the transaction is going away. Mark it abort-worthy so
		// restart loops treat a server bounce like a deadlock abort.
		return &abortWorthyError{err}
	}
	return err
}
