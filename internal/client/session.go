package client

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/splid"
	"repro/internal/tx"
	"repro/internal/wire"
	"repro/internal/xmlmodel"
)

// Session is one server-side session: a protocol choice and at most one
// active transaction. A session must stay on a single goroutine, mirroring
// the engine's one-goroutine-per-transaction rule.
//
// A session is bound to one pool slot. When that slot's connection dies
// mid-call, the session transparently re-establishes itself on the slot's
// replacement connection (OpResumeSession) and the interrupted call returns
// an ErrConnLost-based, abort-worthy error — the transaction is gone, the
// session handle lives on.
type Session struct {
	pool     *Pool
	sl       *slot
	c        *Conn
	id       uint32
	protocol string
	iso      tx.Level
	depth    int
	deadline uint32 // per-request deadline-ms (0 = none)

	// resumeFate/resumeFateTxn hold the fate report from the most recent
	// session resume: what became of the transaction that was in flight when
	// the old connection died. Commit consults them to turn an interrupted
	// commit round trip into its true outcome.
	resumeFate    uint8
	resumeFateTxn uint64
}

// OpenSession creates a session running the named protocol at the given
// isolation and lock depth. Sessions stripe round-robin across the pool's
// connections.
func (p *Pool) OpenSession(protocol string, iso tx.Level, depth int) (*Session, error) {
	sl := p.slot()
	c, err := sl.get()
	if err != nil {
		return nil, err
	}
	body := wire.AppendOpenSession(nil, wire.OpenSession{
		Protocol: protocol, Isolation: uint8(iso), Depth: depth,
	})
	_, resp, err := c.roundTrip(wire.OpOpenSession, 0, 0, body)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	id := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s := &Session{pool: p, sl: sl, c: c, id: uint32(id),
		protocol: protocol, iso: iso, depth: depth}
	if p.opts.RequestDeadline > 0 {
		s.deadline = uint32(p.opts.RequestDeadline.Milliseconds())
	}
	return s, nil
}

// Protocol returns the protocol name the session was opened with.
func (s *Session) Protocol() string { return s.protocol }

// SetRequestDeadline overrides the per-request deadline budget (0 disables).
func (s *Session) SetRequestDeadline(d time.Duration) {
	if d <= 0 {
		s.deadline = 0
		return
	}
	s.deadline = uint32(d.Milliseconds())
}

// call round-trips one session-scoped request, timing it into the pool's
// latency histogram. A connection-level failure triggers the resume path:
// redial (via the slot) and re-open the session, then report the
// interrupted call as abort-worthy so the caller restarts its transaction.
func (s *Session) call(op wire.Op, body []byte) ([]byte, error) {
	var t0 time.Time
	if s.pool.mLatency != nil {
		t0 = s.pool.mLatency.Start()
	}
	_, resp, err := s.c.roundTripTimeout(op, s.id, s.deadline, body, s.pool.opts.CallTimeout)
	if s.pool.mLatency != nil {
		s.pool.mLatency.Since(t0)
	}
	if err == nil || !s.shouldResume(err) {
		return resp, err
	}
	if rerr := s.resume(); rerr != nil {
		return nil, fmt.Errorf("client: %s: %w (reconnect failed: %v)", op, err, rerr)
	}
	s.pool.mReconnects.Add(1)
	return nil, &abortWorthyError{fmt.Errorf(
		"%w: %s interrupted (session resumed as %d): %v", ErrConnLost, op, s.id, err)}
}

// shouldResume reports whether a call failure means "session-level death
// worth resuming from": the conn died, the server is bouncing, or the
// server forgot the session (idle reap) — and the pool is still open with
// reconnects enabled.
func (s *Session) shouldResume(err error) bool {
	return (errors.Is(err, ErrShutdown) || errors.Is(err, ErrNoSession)) &&
		!s.pool.opts.DisableReconnect && !s.pool.isClosed()
}

// resume re-establishes the session after a connection loss: get a live
// connection from the session's slot (redialing under its backoff), then
// ask the server to resume — evicting the stale predecessor session if the
// server still holds it — retrying through drain windows and busy rejections
// under the redial backoff until RedialBudget runs out.
func (s *Session) resume() error {
	backoff := s.pool.opts.RedialBackoff
	deadline := time.Now().Add(s.pool.opts.RedialBudget)
	var lastErr error
	for {
		if s.pool.isClosed() {
			return ErrShutdown
		}
		c, err := s.sl.get()
		if err == nil {
			body := wire.AppendResumeSession(nil, wire.ResumeSession{
				Old: s.id,
				Open: wire.OpenSession{
					Protocol: s.protocol, Isolation: uint8(s.iso), Depth: s.depth,
				},
			})
			_, resp, rerr := c.roundTripTimeout(wire.OpResumeSession, 0, 0, body, s.pool.opts.CallTimeout)
			if rerr == nil {
				r := wire.NewReader(resp)
				rr := r.ResumeResult()
				if err := r.Err(); err != nil {
					return err
				}
				s.c, s.id = c, rr.ID
				s.resumeFate, s.resumeFateTxn = rr.Fate, rr.FateTxn
				return nil
			}
			if !errors.Is(rerr, ErrShutdown) && !errors.Is(rerr, ErrBusy) {
				return rerr // rejected outright (bad request, engine failure)
			}
			err = rerr
		}
		lastErr = err
		if !time.Now().Before(deadline) {
			return fmt.Errorf("client: session resume: %w", lastErr)
		}
		backoff = backoffSleep(backoff, s.pool.opts.RedialMaxBackoff)
	}
}

// Close ends the session, aborting any active transaction server-side. A
// dead connection counts as closed — the server reaps the session on its
// own — so Close never triggers a redial.
func (s *Session) Close() error {
	_, _, err := s.c.roundTripTimeout(wire.OpCloseSession, s.id, s.deadline, nil, s.pool.opts.CallTimeout)
	if err != nil && (errors.Is(err, ErrShutdown) || errors.Is(err, ErrNoSession)) {
		return nil
	}
	return err
}

// Txn is a server-side transaction handle. It satisfies the same
// ID/Commit/Abort surface as *tx.Txn.
type Txn struct {
	s  *Session
	id uint64
}

// ID returns the server-assigned transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Commit commits the transaction. A commit whose round trip is severed by a
// connection loss is not guessed at: the resume's fate report says whether
// the server committed it before the session died. A reported commit returns
// nil — the transaction landed exactly once — and anything else surfaces the
// abort-worthy error as before.
func (t *Txn) Commit() error {
	_, err := t.s.call(wire.OpCommit, nil)
	if err != nil && errors.Is(err, ErrConnLost) &&
		t.s.resumeFateTxn == t.id && t.s.resumeFate == wire.FateCommitted {
		return nil
	}
	return err
}

// Abort rolls the transaction back. A transaction lost to a connection
// bounce is already aborted server-side (session teardown released its
// locks), so an abort interrupted by a resume reports success.
func (t *Txn) Abort() error {
	_, err := t.s.call(wire.OpAbort, nil)
	if err != nil && errors.Is(err, ErrConnLost) {
		return nil
	}
	return err
}

// Begin starts a transaction on the session (one at a time). Unlike
// mid-transaction operations, a Begin interrupted by a connection loss has
// no in-flight work to lose — any transaction the lost request may have
// started was aborted by the resume's session eviction — so it retries
// transparently on the resumed session instead of surfacing the abort.
func (s *Session) Begin() (*Txn, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		resp, err := s.call(wire.OpBegin, nil)
		if err == nil {
			r := wire.NewReader(resp)
			id := r.Uvarint()
			if err := r.Err(); err != nil {
				return nil, err
			}
			return &Txn{s: s, id: id}, nil
		}
		if !errors.Is(err, ErrConnLost) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// Catalog fetches the engine's jump-target catalog.
func (s *Session) Catalog() (wire.Catalog, error) {
	resp, err := s.call(wire.OpCatalog, nil)
	if err != nil {
		return wire.Catalog{}, err
	}
	r := wire.NewReader(resp)
	cat := r.Catalog()
	return cat, r.Err()
}

// LookupName resolves a vocabulary name to its surrogate.
func (s *Session) LookupName(name string) (xmlmodel.Sur, bool, error) {
	resp, err := s.call(wire.OpLookupName, wire.AppendString(nil, name))
	if err != nil {
		return 0, false, err
	}
	r := wire.NewReader(resp)
	found := r.Byte() != 0
	sur := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, false, err
	}
	return xmlmodel.Sur(sur), found, nil
}

// nodeResult decodes a single-node response.
func nodeResult(resp []byte, err error) (xmlmodel.Node, error) {
	if err != nil {
		return xmlmodel.Node{}, err
	}
	r := wire.NewReader(resp)
	n := r.Node()
	return n, r.Err()
}

// nodesResult decodes a node-list response.
func nodesResult(resp []byte, err error) ([]xmlmodel.Node, error) {
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	ns := r.Nodes()
	return ns, r.Err()
}

// GetNode fetches one node by SPLID.
func (s *Session) GetNode(id splid.ID) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpGetNode, wire.AppendID(nil, id)))
}

// JumpToID resolves an ID-attribute value to its element.
func (s *Session) JumpToID(value string) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpJumpToID, wire.AppendString(nil, value)))
}

// FirstChild returns the first regular child (null-ID node when none).
func (s *Session) FirstChild(id splid.ID) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpFirstChild, wire.AppendID(nil, id)))
}

// LastChild returns the last regular child.
func (s *Session) LastChild(id splid.ID) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpLastChild, wire.AppendID(nil, id)))
}

// NextSibling returns the following sibling.
func (s *Session) NextSibling(id splid.ID) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpNextSibling, wire.AppendID(nil, id)))
}

// PrevSibling returns the preceding sibling.
func (s *Session) PrevSibling(id splid.ID) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpPrevSibling, wire.AppendID(nil, id)))
}

// Parent returns the parent node (null-ID node for the root).
func (s *Session) Parent(id splid.ID) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpParent, wire.AppendID(nil, id)))
}

// GetChildren returns the regular children of a node.
func (s *Session) GetChildren(id splid.ID) ([]xmlmodel.Node, error) {
	return nodesResult(s.call(wire.OpGetChildren, wire.AppendID(nil, id)))
}

// GetAttributes returns an element's attributes.
func (s *Session) GetAttributes(el splid.ID) ([]xmlmodel.Node, error) {
	return nodesResult(s.call(wire.OpGetAttributes, wire.AppendID(nil, el)))
}

// Value reads one node's value.
func (s *Session) Value(id splid.ID) ([]byte, error) {
	resp, err := s.call(wire.OpValue, wire.AppendID(nil, id))
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	v := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Detach from the response buffer.
	return append([]byte(nil), v...), nil
}

// AttributeValue reads one attribute's value by name.
func (s *Session) AttributeValue(el splid.ID, name string) ([]byte, error) {
	resp, err := s.call(wire.OpAttributeValue, wire.AppendString(wire.AppendID(nil, el), name))
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	v := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}

func jumpByte(jump bool) byte {
	if jump {
		return 1
	}
	return 0
}

// ReadFragment scans a subtree in document order.
func (s *Session) ReadFragment(id splid.ID, jump bool) ([]xmlmodel.Node, error) {
	return nodesResult(s.call(wire.OpReadFragment, append(wire.AppendID(nil, id), jumpByte(jump))))
}

// ReadFragmentForUpdate scans a subtree under update-mode locks.
func (s *Session) ReadFragmentForUpdate(id splid.ID, jump bool) ([]xmlmodel.Node, error) {
	return nodesResult(s.call(wire.OpReadFragmentForUpdate, append(wire.AppendID(nil, id), jumpByte(jump))))
}

// UpdateLastChildFragment locks and reads the last child's subtree for
// update, returning the child and its fragment.
func (s *Session) UpdateLastChildFragment(id splid.ID) (xmlmodel.Node, []xmlmodel.Node, error) {
	resp, err := s.call(wire.OpUpdateLastChildFragment, wire.AppendID(nil, id))
	if err != nil {
		return xmlmodel.Node{}, nil, err
	}
	r := wire.NewReader(resp)
	n := r.Node()
	frag := r.Nodes()
	if err := r.Err(); err != nil {
		return xmlmodel.Node{}, nil, err
	}
	return n, frag, nil
}

// SetValue overwrites one node's value.
func (s *Session) SetValue(id splid.ID, value []byte) error {
	_, err := s.call(wire.OpSetValue, wire.AppendBytes(wire.AppendID(nil, id), value))
	return err
}

// Rename changes an element's name.
func (s *Session) Rename(id splid.ID, newName string) error {
	_, err := s.call(wire.OpRename, wire.AppendString(wire.AppendID(nil, id), newName))
	return err
}

// AppendElement appends a child element.
func (s *Session) AppendElement(parent splid.ID, name string) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpAppendElement, wire.AppendString(wire.AppendID(nil, parent), name)))
}

// AppendText appends a text child.
func (s *Session) AppendText(parent splid.ID, value []byte) (xmlmodel.Node, error) {
	return nodeResult(s.call(wire.OpAppendText, wire.AppendBytes(wire.AppendID(nil, parent), value)))
}

// InsertElementBefore inserts a child element before a sibling.
func (s *Session) InsertElementBefore(parent, before splid.ID, name string) (xmlmodel.Node, error) {
	body := wire.AppendString(wire.AppendID(wire.AppendID(nil, parent), before), name)
	return nodeResult(s.call(wire.OpInsertElementBefore, body))
}

// SetAttribute sets (inserting or overwriting) an attribute.
func (s *Session) SetAttribute(el splid.ID, name string, value []byte) error {
	body := wire.AppendBytes(wire.AppendString(wire.AppendID(nil, el), name), value)
	_, err := s.call(wire.OpSetAttribute, body)
	return err
}

// DeleteSubtree deletes a node and its subtree.
func (s *Session) DeleteSubtree(id splid.ID) error {
	_, err := s.call(wire.OpDeleteSubtree, wire.AppendID(nil, id))
	return err
}
