package tamix

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tx"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTypeStatsMinDurRegression pins the 0-as-unset fix: a legitimate
// zero-duration commit must survive as the minimum, and an unset MinDur must
// not leak into comparisons. Under the old sentinel, record(0) left MinDur
// looking unset, so the next observation overwrote the true minimum.
func TestTypeStatsMinDurRegression(t *testing.T) {
	s := NewTypeStats()
	if s.MinDur != -1 {
		t.Fatalf("fresh MinDur = %v, want -1 (unset)", s.MinDur)
	}
	s.record(0)
	s.record(10 * time.Millisecond)
	if s.MinDur != 0 {
		t.Fatalf("MinDur = %v after a zero-duration commit, want 0", s.MinDur)
	}
	if s.MaxDur != 10*time.Millisecond || s.Committed != 2 {
		t.Fatalf("stats off: %+v", s)
	}

	s2 := NewTypeStats()
	s2.record(7 * time.Millisecond)
	s2.record(3 * time.Millisecond)
	s2.record(9 * time.Millisecond)
	if s2.MinDur != 3*time.Millisecond {
		t.Fatalf("MinDur = %v, want 3ms", s2.MinDur)
	}
}

// goldenResult is a fully deterministic Result for the schema test.
func goldenResult() *Result {
	reg := metrics.NewRegistry()
	reg.Counter("lock.requests").Add(1200)
	for i := 1; i <= 100; i++ {
		reg.Histogram("lock.wait").Record(uint64(i) * 1000)
		reg.Histogram("buffer.fix_miss").Record(uint64(i) * 500)
		reg.Histogram("wal.force").Record(uint64(i) * 2000)
		reg.Histogram("tx.commit").Record(uint64(i) * 3000)
	}
	res := &Result{
		Protocol:            "taDOM3+",
		Isolation:           tx.LevelRepeatable,
		Depth:               5,
		Elapsed:             600 * time.Millisecond,
		PerType:             map[TxType]*TypeStats{},
		Committed:           150,
		Aborted:             12,
		Restarts:            10,
		RestartWait:         40 * time.Millisecond,
		Dropped:             2,
		Deadlocks:           7,
		ConversionDeadlocks: 6,
		SubtreeDeadlocks:    1,
		Timeouts:            1,
		LockRequests:        1200,
		LockCacheHits:       300,
		LockWaits:           80,
		Metrics:             reg.Snapshot(),
	}
	for _, typ := range TxTypes {
		st := NewTypeStats()
		res.PerType[typ] = st
	}
	qs := res.PerType[TAqueryBook]
	qs.record(4 * time.Millisecond)
	qs.record(2 * time.Millisecond)
	qs.Aborted = 3
	return res
}

// TestReportGoldenSchema locks the JSON layout of the run report against a
// golden file: scripts parse these field names, so any drift must be a
// conscious decision (re-bless with -update).
func TestReportGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult().Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from golden file.\ngot:\n%s\nwant:\n%s\n(re-bless with go test -run TestReportGoldenSchema -update if intended)",
			buf.Bytes(), want)
	}
}

// TestReportFields spot-checks the Result -> Report mapping, including the
// conservative-percentile digests the report surfaces.
func TestReportFields(t *testing.T) {
	rep := goldenResult().Report()
	if rep.Protocol != "taDOM3+" || rep.Isolation != "repeatable" || rep.Depth != 5 {
		t.Errorf("identity fields: %+v", rep)
	}
	if rep.ElapsedMS != 600 {
		t.Errorf("elapsed_ms = %v", rep.ElapsedMS)
	}
	// 150 commits in 0.6s, normalized to 5 minutes.
	if want := 150.0 * 300 / 0.6; rep.Throughput != want {
		t.Errorf("throughput = %v, want %v", rep.Throughput, want)
	}
	q := rep.PerType[TAqueryBook.String()]
	if q.MinMS != 2 || q.MaxMS != 4 || q.AvgMS != 3 || q.Committed != 2 {
		t.Errorf("per-type digest: %+v", q)
	}
	idle := rep.PerType[TAdelBook.String()]
	if idle.MinMS != 0 || idle.MaxMS != 0 {
		t.Errorf("unset min/max must render as 0: %+v", idle)
	}
	for _, name := range []string{"lock.wait", "buffer.fix_miss", "wal.force", "tx.commit"} {
		d, ok := rep.Latencies[name]
		if !ok || d.Count != 100 {
			t.Errorf("latency digest %s missing or wrong: %+v", name, d)
			continue
		}
		if d.P50 > d.P95 || d.P95 > d.P99 || d.P99 > d.Max {
			t.Errorf("%s percentiles not monotone: %+v", name, d)
		}
	}
	if rep.Counters["lock.requests"] != 1200 {
		t.Errorf("counters not carried: %+v", rep.Counters)
	}
}

// TestContestReportRanking pins rank assignment order.
func TestContestReportRanking(t *testing.T) {
	c := &ContestReport{Results: []RankedReport{
		{Group: "g", Report: &Report{Protocol: "slow", Throughput: 10}},
		{Group: "g", Report: &Report{Protocol: "fast", Throughput: 30}},
		{Group: "g", Report: &Report{Protocol: "mid", Throughput: 20}},
	}}
	c.Rank()
	order := []string{c.Results[0].Protocol, c.Results[1].Protocol, c.Results[2].Protocol}
	if order[0] != "fast" || order[1] != "mid" || order[2] != "slow" {
		t.Errorf("ranking order %v", order)
	}
	if c.Results[0].Rank != 1 || c.Results[2].Rank != 3 {
		t.Errorf("ranks not assigned: %+v", c.Results)
	}
}

// TestRunCapturesMetrics is the end-to-end check of the observability layer:
// a real (tiny) TaMix run with a registry and an in-memory WAL must come
// back with populated distributions for lock waits, buffer activity, WAL
// forces, and commits — the quantities the contest report publishes.
func TestRunCapturesMetrics(t *testing.T) {
	cfg := Cluster1Config("taDOM2", tx.LevelRepeatable, 5, 0.02, 0.002)
	cfg.Duration = 400 * time.Millisecond
	cfg.MaxStartDelay = 10 * time.Millisecond
	cfg.LockTimeout = 2 * time.Second
	cfg.Metrics = metrics.NewRegistry()
	cfg.WAL = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics not captured")
	}
	if res.Metrics.Hist("lock.acquire").Count == 0 {
		t.Error("no lock.acquire samples")
	}
	if res.Metrics.Hist("tx.commit").Count == 0 {
		t.Error("no tx.commit samples")
	}
	if res.Metrics.Hist("wal.append").Count == 0 || res.Metrics.Hist("wal.force").Count == 0 {
		t.Error("WAL histograms empty despite cfg.WAL")
	}
	if got, want := res.Metrics.CounterValue("tx.committed"), uint64(res.Committed); got < want {
		t.Errorf("tx.committed counter %d below Result.Committed %d", got, want)
	}
	if res.Metrics.CounterValue("buffer.hits") == 0 {
		t.Error("buffer.hits counter empty")
	}
	rep := res.Report()
	if len(rep.Latencies) == 0 || rep.Latencies["lock.acquire"].Count == 0 {
		t.Error("report carries no latency digests")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("report JSON unparsable: %v", err)
	}
	for _, key := range []string{"protocol", "throughput_tx_per_5min", "per_type", "latencies", "counters"} {
		if _, ok := parsed[key]; !ok {
			t.Errorf("report missing %q", key)
		}
	}
}
