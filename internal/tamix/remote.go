package tamix

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/protocol"
	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

// remoteEngine adapts one xtcd client session to Engine. A session carries
// at most one transaction and must stay on one goroutine, which matches the
// slot discipline exactly: every slot owns its session.
type remoteEngine struct {
	sess *client.Session
	// names caches vocabulary lookups; the workload resolves the same one or
	// two names every traversal and a cache turns that round trip into a map
	// hit. Single-goroutine access, no lock.
	names map[string]nameEntry
}

type nameEntry struct {
	sur xmlmodel.Sur
	ok  bool
}

func newRemoteEngine(sess *client.Session) *remoteEngine {
	return &remoteEngine{sess: sess, names: map[string]nameEntry{}}
}

// Begin ignores the read-only flag: a remote session's isolation level is
// fixed at OpenSession, so snapshot routing happens per-slot (runRemote
// opens the read-only slots' sessions at tx.LevelSnapshot).
func (e *remoteEngine) Begin(bool) (Txn, error) { return e.sess.Begin() }

func (e *remoteEngine) JumpToID(_ Txn, value string) (xmlmodel.Node, error) {
	return e.sess.JumpToID(value)
}

func (e *remoteEngine) FirstChild(_ Txn, id splid.ID) (xmlmodel.Node, error) {
	return e.sess.FirstChild(id)
}

func (e *remoteEngine) LastChild(_ Txn, id splid.ID) (xmlmodel.Node, error) {
	return e.sess.LastChild(id)
}

func (e *remoteEngine) NextSibling(_ Txn, id splid.ID) (xmlmodel.Node, error) {
	return e.sess.NextSibling(id)
}

func (e *remoteEngine) GetChildren(_ Txn, id splid.ID) ([]xmlmodel.Node, error) {
	return e.sess.GetChildren(id)
}

func (e *remoteEngine) ReadFragment(_ Txn, id splid.ID, jump bool) ([]xmlmodel.Node, error) {
	return e.sess.ReadFragment(id, jump)
}

func (e *remoteEngine) UpdateLastChildFragment(_ Txn, id splid.ID) (xmlmodel.Node, []xmlmodel.Node, error) {
	return e.sess.UpdateLastChildFragment(id)
}

func (e *remoteEngine) SetValue(_ Txn, id splid.ID, value []byte) error {
	return e.sess.SetValue(id, value)
}

func (e *remoteEngine) Rename(_ Txn, id splid.ID, newName string) error {
	return e.sess.Rename(id, newName)
}

func (e *remoteEngine) AppendElement(_ Txn, parent splid.ID, name string) (xmlmodel.Node, error) {
	return e.sess.AppendElement(parent, name)
}

func (e *remoteEngine) SetAttribute(_ Txn, el splid.ID, name string, value []byte) error {
	return e.sess.SetAttribute(el, name, value)
}

func (e *remoteEngine) DeleteSubtree(_ Txn, id splid.ID) error {
	return e.sess.DeleteSubtree(id)
}

func (e *remoteEngine) LookupName(name string) (xmlmodel.Sur, bool) {
	if ent, hit := e.names[name]; hit {
		return ent.sur, ent.ok
	}
	sur, ok, err := e.sess.LookupName(name)
	if err != nil {
		// Lookup failures surface on the next locked operation; treat as
		// unknown here (the traversal then simply finds no summaries).
		return 0, false
	}
	e.names[name] = nameEntry{sur: sur, ok: ok}
	return sur, ok
}

// statDelta is after-minus-before with a wrap clamp: a server restart
// mid-run resets the engine's counters, leaving after < before; report the
// post-restart accumulation rather than an underflowed garbage value.
func statDelta(after, before uint64) uint64 {
	if after < before {
		return after
	}
	return after - before
}

// runRemote executes the TaMix workload against an xtcd server: same slot
// structure, same restart policy, same post-run audits — but every slot is a
// wire session and the audits and lock statistics come from the server. The
// figure harnesses double as server load tests this way.
func runRemote(cfg Config) (*Result, error) {
	p, err := protocol.Parse(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	conns := cfg.RemoteConns
	if conns <= 0 {
		conns = 4
	}
	copts := cfg.RemoteClient
	copts.Conns = conns
	copts.Metrics = cfg.Metrics
	pool, err := client.Dial(cfg.Remote, copts)
	if err != nil {
		return nil, fmt.Errorf("tamix: dial %s: %w", cfg.Remote, err)
	}
	defer pool.Close()

	maxRestarts := cfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = DefaultMaxRestarts
	} else if maxRestarts < 0 {
		maxRestarts = 0
	}
	restartBase := cfg.RestartBackoff
	if restartBase <= 0 {
		restartBase = DefaultRestartBackoff
	}
	restartCap := cfg.RestartMaxBackoff
	if restartCap <= 0 {
		restartCap = DefaultRestartMaxBackoff
	}

	res := &Result{
		Protocol:        p.Name(),
		Isolation:       cfg.Isolation,
		Depth:           cfg.Depth,
		PerType:         make(map[TxType]*TypeStats),
		DeadlockVictims: make(map[TxType]uint64),
	}
	for _, t := range TxTypes {
		res.PerType[t] = NewTypeStats()
	}

	// A bootstrap session forces the server to build the engine (loading the
	// document) and serves the catalog every slot works from.
	boot, err := pool.OpenSession(p.Name(), cfg.Isolation, cfg.Depth)
	if err != nil {
		return nil, fmt.Errorf("tamix: open bootstrap session: %w", err)
	}
	wcat, err := boot.Catalog()
	if cerr := boot.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("tamix: fetch catalog: %w", err)
	}
	cat := &Catalog{
		BookIDs:   wcat.Books,
		TopicIDs:  wcat.Topics,
		PersonIDs: wcat.Persons,
		Books:     len(wcat.Books),
	}
	if len(cat.BookIDs) == 0 || len(cat.TopicIDs) == 0 || len(cat.PersonIDs) == 0 {
		return nil, fmt.Errorf("tamix: server catalog for %s is empty", p.Name())
	}

	// Server-side counters accumulate for the engine's lifetime; the run's
	// contribution is the before/after difference.
	before, err := pool.Stats(p.Name())
	if err != nil && !errors.Is(err, storage.ErrNodeNotFound) {
		return nil, fmt.Errorf("tamix: baseline stats: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var failOnce sync.Once
	var runErr error
	fail := func(err error) {
		failOnce.Do(func() {
			runErr = err
			cancel()
		})
	}

	var txTypes sync.Map // unused remotely, but runOnce records when it can
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	slot := 0
	for c := 0; c < cfg.Clients; c++ {
		for _, txType := range TxTypes {
			for i := 0; i < cfg.Mix[txType]; i++ {
				slot++
				wg.Add(1)
				go func(txType TxType, seed int64) {
					defer wg.Done()
					// A session's isolation level is fixed at open, so the
					// snapshot contestant's read-only slots open whole
					// sessions at tx.LevelSnapshot.
					iso := cfg.Isolation
					if protocol.UsesSnapshotReads(p) && txType.ReadOnly() {
						iso = tx.LevelSnapshot
					}
					sess, err := pool.OpenSession(p.Name(), iso, cfg.Depth)
					if err != nil {
						fail(fmt.Errorf("tamix: %s: open session: %w", txType, err))
						return
					}
					defer sess.Close()
					rng := rand.New(rand.NewSource(seed))
					eng := newRemoteEngine(sess)
					r := &runner{m: eng, cat: cat, rng: rng,
						waitOp: cfg.WaitAfterOperation, updateLocks: cfg.UseUpdateLocks}
					if cfg.MaxStartDelay > 0 {
						if !sleepCtx(ctx, time.Duration(rng.Int63n(int64(cfg.MaxStartDelay)))) {
							return
						}
					}
					for time.Now().Before(deadline) && ctx.Err() == nil {
						if !runOnce(ctx, cfg, eng, r, res, &mu, &txTypes, txType,
							deadline, maxRestarts, restartBase, restartCap, fail) {
							return
						}
						if !sleepCtx(ctx, cfg.WaitAfterCommit) {
							return
						}
					}
				}(txType, cfg.Seed+int64(slot)*7919)
			}
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if cfg.Metrics != nil {
		res.Metrics = cfg.Metrics.Snapshot()
	}
	if runErr != nil {
		return nil, fmt.Errorf("tamix: remote run failed under %s: %w", p.Name(), runErr)
	}

	// The same post-run integrity gate as a local run, executed server-side:
	// the document must verify and the lock table must be empty.
	if err := pool.Audit(p.Name()); err != nil {
		return nil, fmt.Errorf("tamix: remote audit under %s: %w", p.Name(), err)
	}
	after, err := pool.Stats(p.Name())
	if err != nil {
		return nil, fmt.Errorf("tamix: final stats: %w", err)
	}
	res.Deadlocks = statDelta(after.Deadlocks, before.Deadlocks)
	res.ConversionDeadlocks = statDelta(after.ConversionDeadlocks, before.ConversionDeadlocks)
	res.SubtreeDeadlocks = statDelta(after.SubtreeDeadlocks, before.SubtreeDeadlocks)
	res.Timeouts = statDelta(after.Timeouts, before.Timeouts)
	res.LockRequests = statDelta(after.LockRequests, before.LockRequests)
	res.LockCacheHits = statDelta(after.LockCacheHits, before.LockCacheHits)
	res.LockWaits = statDelta(after.LockWaits, before.LockWaits)

	for _, t := range TxTypes {
		st := res.PerType[t]
		res.Committed += st.Committed
		res.Aborted += st.Aborted
		res.Restarts += st.Restarts
		res.RestartWait += st.RestartWait
		res.Dropped += st.Dropped
	}
	return res, nil
}
