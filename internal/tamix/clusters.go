package tamix

import (
	"math/rand"
	"time"

	"repro/internal/node"
	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/tx"
)

// Timing bundles the paper's run-control parameters (Section 4.3). Scale
// shrinks them proportionally so full parameter sweeps fit in tests and CI
// while preserving the ratio of think time to work time.
type Timing struct {
	Duration           time.Duration
	WaitAfterCommit    time.Duration
	WaitAfterOperation time.Duration
	MaxStartDelay      time.Duration
	LockTimeout        time.Duration
}

// PaperTiming is the original setting: 5-minute runs, 2500 ms after commit,
// 100 ms after each operation, 0-5000 ms start delay.
func PaperTiming() Timing {
	return Timing{
		Duration:           5 * time.Minute,
		WaitAfterCommit:    2500 * time.Millisecond,
		WaitAfterOperation: 100 * time.Millisecond,
		MaxStartDelay:      5000 * time.Millisecond,
		LockTimeout:        30 * time.Second,
	}
}

// ScaledTiming multiplies every paper interval by s (0 < s <= 1). The lock
// timeout shrinks more cautiously so scaled runs still separate blocking
// from deadlock.
func ScaledTiming(s float64) Timing {
	p := PaperTiming()
	scale := func(d time.Duration) time.Duration {
		v := time.Duration(float64(d) * s)
		if v < time.Millisecond {
			v = time.Millisecond
		}
		return v
	}
	return Timing{
		Duration:           scale(p.Duration),
		WaitAfterCommit:    scale(p.WaitAfterCommit),
		WaitAfterOperation: scale(p.WaitAfterOperation),
		MaxStartDelay:      scale(p.MaxStartDelay),
		LockTimeout:        scale(p.LockTimeout/10) + 2*time.Second,
	}
}

// Cluster1Mix is the CLUSTER1 per-client mix: 9 TAqueryBook, 5 TAchapter,
// 2 TArenameTopic, 8 TAlendAndReturn (24 per client; with 3 clients the
// coordinator keeps 72 transactions active).
func Cluster1Mix() map[TxType]int {
	return map[TxType]int{
		TAqueryBook:     9,
		TAchapter:       5,
		TArenameTopic:   2,
		TAlendAndReturn: 8,
	}
}

// Cluster1Config assembles the CLUSTER1 workload for one protocol,
// isolation level, and lock depth, scaled by docScale (document size) and
// timeScale (run-control intervals).
func Cluster1Config(protocolName string, iso tx.Level, depth int, docScale, timeScale float64) Config {
	t := ScaledTiming(timeScale)
	return Config{
		Protocol:           protocolName,
		Isolation:          iso,
		Depth:              depth,
		Clients:            3,
		Mix:                Cluster1Mix(),
		Duration:           t.Duration,
		WaitAfterCommit:    t.WaitAfterCommit,
		WaitAfterOperation: t.WaitAfterOperation,
		MaxStartDelay:      t.MaxStartDelay,
		LockTimeout:        t.LockTimeout,
		Bib:                Scaled(docScale),
		Seed:               42,
	}
}

// Cluster2Result reports the CLUSTER2 metric for one protocol: the
// execution time of TAdelBook in single-user mode at isolation level
// repeatable (Section 5.3). LockRequests exposes the locking overhead that
// produces the time difference.
type Cluster2Result struct {
	Protocol     string
	Runs         int
	TotalTime    time.Duration
	AvgTime      time.Duration
	LockRequests uint64
}

// RunCluster2 executes TAdelBook `runs` times single-user under the given
// protocol (each run deletes a different book) and reports the average
// execution time. The *-2PL protocols pay for the subtree search that
// IDX-locks every element owning an ID attribute; the intention-lock
// protocols do not.
func RunCluster2(protocolName string, docScale float64, runs int) (*Cluster2Result, error) {
	p, err := protocol.Parse(protocolName)
	if err != nil {
		return nil, err
	}
	doc, cat, err := GenerateBib(pagestore.NewMemBackend(), Scaled(docScale))
	if err != nil {
		return nil, err
	}
	defer doc.Close()
	mgr := node.New(doc, p, node.Options{Depth: 4, LockTimeout: 10 * time.Second})
	if runs > len(cat.TopicIDs) {
		runs = len(cat.TopicIDs)
	}
	res := &Cluster2Result{Protocol: protocolName, Runs: runs}
	for i := 0; i < runs; i++ {
		// Deterministic topic choice so every protocol deletes comparable
		// subtrees.
		r := &runner{m: newLocalEngine(mgr, tx.LevelRepeatable), cat: &Catalog{
			TopicIDs: []string{cat.TopicIDs[i]},
			BookIDs:  cat.BookIDs,
		}, rng: newSeededRand(int64(i)), waitOp: 0}
		txn := mgr.Begin(tx.LevelRepeatable)
		t0 := time.Now()
		if err := r.run(TAdelBook, txn); err != nil {
			txn.Abort()
			return nil, err
		}
		if err := txn.Commit(); err != nil {
			return nil, err
		}
		res.TotalTime += time.Since(t0)
	}
	if res.Runs > 0 {
		res.AvgTime = res.TotalTime / time.Duration(res.Runs)
	}
	res.LockRequests = mgr.LockManager().Stats().Requests
	return res, nil
}

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
