package tamix

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/pagestore"
	"repro/internal/splid"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

func TestGenerateBibStructure(t *testing.T) {
	cfg := Scaled(0.05) // 5 topics, 100 books, 50 persons
	doc, cat, err := GenerateBib(pagestore.NewMemBackend(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer doc.Close()

	if len(cat.TopicIDs) != 5 || cat.Books != 100 || len(cat.BookIDs) != 100 {
		t.Fatalf("catalog: %d topics, %d books", len(cat.TopicIDs), cat.Books)
	}
	if len(cat.PersonIDs) != 50 {
		t.Fatalf("catalog: %d persons", len(cat.PersonIDs))
	}
	// Every cataloged ID is resolvable via the ID index.
	for _, id := range append(append([]string{}, cat.BookIDs[:5]...), cat.TopicIDs...) {
		if _, err := doc.ElementByID([]byte(id)); err != nil {
			t.Errorf("id %s unresolvable: %v", id, err)
		}
	}
	// Element counts via the element index.
	count := func(name string) int {
		n := 0
		doc.ElementsByName(name, func(splid.ID) bool { n++; return true })
		return n
	}
	if n := count("book"); n != 100 {
		t.Errorf("book count = %d", n)
	}
	if n := count("topic"); n != 5 {
		t.Errorf("topic count = %d", n)
	}
	if n := count("person"); n != 50 {
		t.Errorf("person count = %d", n)
	}
	if n := count("chapter"); n < 5*100 || n > 10*100 {
		t.Errorf("chapter count = %d, want 500..1000", n)
	}
	if n := count("lend"); n < 9*100 || n > 10*100 {
		t.Errorf("lend count = %d, want 900..1000", n)
	}

	// Structure of one book: title, author, price, chapters, history.
	book, err := doc.ElementByID([]byte(cat.BookIDs[0]))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	doc.ScanChildren(book, func(n xmlmodel.Node) bool {
		names = append(names, doc.Vocabulary().Name(n.Name))
		return true
	})
	want := "[title author price chapters history]"
	if fmt.Sprint(names) != want {
		t.Errorf("book children = %v, want %v", names, want)
	}
}

func TestGenerateBibDeterministic(t *testing.T) {
	cfg := Scaled(0.02)
	d1, c1, err := GenerateBib(pagestore.NewMemBackend(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	d2, c2, err := GenerateBib(pagestore.NewMemBackend(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d1.Size() != d2.Size() {
		t.Errorf("sizes differ: %d vs %d", d1.Size(), d2.Size())
	}
	if fmt.Sprint(c1.BookIDs) != fmt.Sprint(c2.BookIDs) {
		t.Error("catalogs differ")
	}
}

func TestTxTypeStrings(t *testing.T) {
	for _, typ := range TxTypes {
		if typ.String() == "" || typ.String()[:2] != "TA" {
			t.Errorf("bad name %q", typ.String())
		}
	}
}

// runQuick executes a short CLUSTER1 run for one protocol.
func runQuick(t *testing.T, proto string, iso tx.Level, depth int) *Result {
	t.Helper()
	cfg := Cluster1Config(proto, iso, depth, 0.02, 0.002)
	cfg.Duration = 600 * time.Millisecond
	cfg.MaxStartDelay = 10 * time.Millisecond
	cfg.LockTimeout = 2 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCluster1RunsAllTypes(t *testing.T) {
	res := runQuick(t, "taDOM3+", tx.LevelRepeatable, 7)
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	for _, typ := range []TxType{TAqueryBook, TAchapter, TAlendAndReturn, TArenameTopic} {
		st := res.PerType[typ]
		if st.Committed+st.Aborted == 0 {
			t.Errorf("%v: no activity", typ)
		}
	}
	if res.PerType[TAdelBook].Committed != 0 {
		t.Error("TAdelBook must not run in CLUSTER1")
	}
	if res.Throughput() <= 0 {
		t.Error("throughput should be positive")
	}
	q := res.PerType[TAqueryBook]
	if q.Committed > 0 && (q.MinDur < 0 || q.MaxDur < q.MinDur || q.AvgDur() < q.MinDur) {
		t.Errorf("duration stats inconsistent: min=%v avg=%v max=%v", q.MinDur, q.AvgDur(), q.MaxDur)
	}
}

func TestCluster1UnderEveryProtocolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke test")
	}
	for _, name := range []string{"Node2PL", "NO2PL", "OO2PL", "Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+", "taDOM3", "taDOM3+"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := runQuick(t, name, tx.LevelRepeatable, 4)
			if res.Committed == 0 {
				t.Errorf("%s committed nothing (aborted %d, deadlocks %d, timeouts %d)",
					name, res.Aborted, res.Deadlocks, res.Timeouts)
			}
		})
	}
}

func TestIsolationNoneNeverAborts(t *testing.T) {
	res := runQuick(t, "taDOM3+", tx.LevelNone, 7)
	if res.Aborted != 0 {
		t.Errorf("isolation none aborted %d transactions", res.Aborted)
	}
	if res.LockRequests != 0 {
		t.Errorf("isolation none issued %d lock requests", res.LockRequests)
	}
}

func TestDepthZeroCollapsesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	deep := runQuick(t, "taDOM3+", tx.LevelRepeatable, 7)
	flat := runQuick(t, "taDOM3+", tx.LevelRepeatable, 0)
	// Depth 0 means document locks: writers serialize the whole document,
	// so throughput must drop well below the fine-granular setting.
	if flat.Committed >= deep.Committed {
		t.Errorf("depth 0 committed %d >= depth 7 committed %d", flat.Committed, deep.Committed)
	}
}

func TestCluster2TwoPLPaysForIDXScan(t *testing.T) {
	twoPL, err := RunCluster2("Node2PL", 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	tadom, err := RunCluster2("taDOM3+", 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	if twoPL.Runs != 2 || tadom.Runs != 2 {
		t.Fatalf("runs: %d / %d", twoPL.Runs, tadom.Runs)
	}
	// The *-2PL group must issue far more lock requests (the IDX/M subtree
	// scan) than the intention-lock protocols.
	if twoPL.LockRequests < 4*tadom.LockRequests {
		t.Errorf("Node2PL requests %d not >> taDOM3+ requests %d",
			twoPL.LockRequests, tadom.LockRequests)
	}
	if twoPL.AvgTime <= 0 || tadom.AvgTime <= 0 {
		t.Error("durations must be positive")
	}
}

func TestScaledConfigs(t *testing.T) {
	c := Scaled(1.0)
	d := DefaultBibConfig()
	if c.Topics != d.Topics || c.Persons != d.Persons {
		t.Error("Scaled(1.0) should be the paper config")
	}
	small := Scaled(0.001)
	if small.Topics < 1 || small.Persons < 1 {
		t.Error("scaling must keep at least one of each")
	}
	pt := PaperTiming()
	st := ScaledTiming(0.01)
	if st.Duration >= pt.Duration || st.WaitAfterCommit >= pt.WaitAfterCommit {
		t.Error("scaled timing should shrink")
	}
	mix := Cluster1Mix()
	total := 0
	for _, n := range mix {
		total += n
	}
	if total != 24 {
		t.Errorf("CLUSTER1 mix has %d slots per client, want 24", total)
	}
}

func TestUpdateLocksReduceConversionDeadlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	// Hammer TAlendAndReturn on a single book so every transaction converts
	// on the same history node. The plain path reproduces the symmetric
	// LR -> CX conversion deadlock of Figures 3b/4; declaring the intent
	// with SU up front serializes the writers and structurally removes it.
	run := func(updateLocks bool) *Result {
		cfg := Cluster1Config("taDOM2", tx.LevelRepeatable, 7, 0.005, 0.002)
		cfg.Bib.Topics = 1
		cfg.Bib.BooksPerTopic = 1
		cfg.Mix = map[TxType]int{TAlendAndReturn: 12}
		cfg.Duration = 800 * time.Millisecond
		cfg.MaxStartDelay = 5 * time.Millisecond
		cfg.UseUpdateLocks = updateLocks
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	update := run(true)
	if plain.ConversionDeadlocks == 0 {
		t.Skip("workload produced no conversion deadlocks to ablate")
	}
	// Compare deadlocks per executed transaction: update intent must cut
	// the conversion-deadlock rate drastically (structurally it eliminates
	// the history-node cycle; residual cycles come from path locks).
	rate := func(r *Result) float64 {
		return float64(r.ConversionDeadlocks) / float64(r.Committed+r.Aborted+1)
	}
	if rate(update) > rate(plain)/2 {
		t.Errorf("update locks did not reduce the conversion-deadlock rate: %.3f (%d/%d) -> %.3f (%d/%d)",
			rate(plain), plain.ConversionDeadlocks, plain.Committed+plain.Aborted,
			rate(update), update.ConversionDeadlocks, update.Committed+update.Aborted)
	}
}

func TestDeadlockAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cfg := Cluster1Config("taDOM2", tx.LevelRepeatable, 7, 0.005, 0.002)
	cfg.Mix = map[TxType]int{TAlendAndReturn: 12}
	cfg.Duration = 800 * time.Millisecond
	cfg.MaxStartDelay = 5 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks == 0 {
		t.Skip("no deadlocks to attribute")
	}
	var attributed uint64
	for _, n := range res.DeadlockVictims {
		attributed += n
	}
	if attributed != res.Deadlocks {
		t.Errorf("attributed %d of %d deadlocks", attributed, res.Deadlocks)
	}
	if res.DeadlockVictims[TAlendAndReturn] == 0 {
		t.Error("the only running type must own the victims")
	}
	var cycles uint64
	for _, n := range res.DeadlockCycleLengths {
		cycles += n
	}
	if cycles != res.Deadlocks {
		t.Errorf("cycle histogram holds %d of %d", cycles, res.Deadlocks)
	}
}
