package tamix

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/lock"
	"repro/internal/node"
	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/tx"
)

// Config describes one TaMix benchmark run.
type Config struct {
	// Protocol names the lock protocol under test.
	Protocol string
	// Isolation is the isolation level of every transaction.
	Isolation tx.Level
	// Depth is the lock-depth parameter (ignored by depth-unaware
	// protocols; negative = unlimited).
	Depth int
	// Clients is the number of TaMix clients (paper: 3).
	Clients int
	// Mix is the per-client transaction mix: how many concurrent slots of
	// each type every client keeps active (paper CLUSTER1: 9 TAqueryBook,
	// 5 TAchapter, 2 TArenameTopic, 8 TAlendAndReturn = 24 per client, 72
	// total).
	Mix map[TxType]int
	// Duration is the measurement interval (paper: 5 minutes).
	Duration time.Duration
	// WaitAfterCommit is the client think time between transactions
	// (paper: 2500 ms).
	WaitAfterCommit time.Duration
	// WaitAfterOperation is the pause between operations inside a
	// transaction (paper: 100 ms).
	WaitAfterOperation time.Duration
	// MaxStartDelay staggers slot start-up (paper: 0-5000 ms random).
	MaxStartDelay time.Duration
	// LockTimeout bounds lock waits; it should comfortably exceed the
	// expected blocking times (a timeout aborts like a deadlock victim).
	LockTimeout time.Duration
	// UseUpdateLocks makes TAlendAndReturn declare its write intent with
	// update-mode locks (URIX's U, taDOM's SU) instead of converting read
	// locks — an ablation on the paper's conversion-deadlock observation.
	UseUpdateLocks bool
	// Bib sizes the document.
	Bib BibConfig
	// Seed drives all randomness of the run.
	Seed int64
}

// TypeStats aggregates outcomes for one transaction type — the paper's
// per-type metrics (committed, aborted, min/max/avg duration).
type TypeStats struct {
	Committed int
	Aborted   int
	TotalDur  time.Duration
	MinDur    time.Duration
	MaxDur    time.Duration
}

// AvgDur returns the mean duration of committed transactions.
func (s *TypeStats) AvgDur() time.Duration {
	if s.Committed == 0 {
		return 0
	}
	return s.TotalDur / time.Duration(s.Committed)
}

func (s *TypeStats) record(d time.Duration) {
	s.Committed++
	s.TotalDur += d
	if s.MinDur == 0 || d < s.MinDur {
		s.MinDur = d
	}
	if d > s.MaxDur {
		s.MaxDur = d
	}
}

// Result is the outcome of one TaMix run.
type Result struct {
	// Protocol, Isolation, and Depth echo the configuration.
	Protocol  string
	Isolation tx.Level
	Depth     int
	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration
	// PerType holds the per-transaction-type statistics.
	PerType map[TxType]*TypeStats
	// Committed and Aborted are the totals across types.
	Committed, Aborted int
	// Deadlocks counts detected cycles, split into the paper's two classes.
	Deadlocks, ConversionDeadlocks, SubtreeDeadlocks uint64
	// Timeouts counts lock waits that hit the timeout.
	Timeouts uint64
	// LockRequests is the total number of lock requests issued.
	LockRequests uint64
	// LockCacheHits counts requests answered by the per-transaction lock
	// cache without touching the shared lock table.
	LockCacheHits uint64
	// LockWaits counts requests that blocked.
	LockWaits uint64
	// PartitionWaits is the per-partition blocked-request profile of the
	// striped lock table — where the contention actually landed.
	PartitionWaits []uint64
	// DeadlockVictims attributes deadlock aborts to the victim's
	// transaction type (the XTCdeadlockDetector analysis of Section 4.2).
	DeadlockVictims map[TxType]uint64
	// DeadlockCycleLengths histograms the detected cycle sizes (index =
	// number of transactions on the cycle; index 0 collects longer ones).
	DeadlockCycleLengths [8]uint64
}

// Throughput returns committed transactions, normalized to the paper's
// 5-minute interval so numbers are comparable across scaled-down runs.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) * (5 * time.Minute).Seconds() / r.Elapsed.Seconds()
}

// Run executes one TaMix benchmark: it generates the bib document, starts
// Clients×Mix transaction slots, keeps each slot running transactions of
// its type until Duration elapses, and gathers the metrics.
func Run(cfg Config) (*Result, error) {
	p, err := protocol.ByName(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	doc, cat, err := GenerateBib(pagestore.NewMemBackend(), cfg.Bib)
	if err != nil {
		return nil, err
	}
	defer doc.Close()

	lockTimeout := cfg.LockTimeout
	if lockTimeout <= 0 {
		lockTimeout = 5 * time.Second
	}
	// Deadlock analysis: every lock-manager transaction is registered with
	// its TaMix type so detected cycles can be attributed.
	var txTypes sync.Map // lock.TxID -> TxType
	res := &Result{
		Protocol:        cfg.Protocol,
		Isolation:       cfg.Isolation,
		Depth:           cfg.Depth,
		PerType:         make(map[TxType]*TypeStats),
		DeadlockVictims: make(map[TxType]uint64),
	}
	var dlMu sync.Mutex
	mgr := node.New(doc, p, node.Options{
		Depth:       cfg.Depth,
		LockTimeout: lockTimeout,
		OnDeadlock: func(info lock.DeadlockInfo) {
			dlMu.Lock()
			defer dlMu.Unlock()
			if t, ok := txTypes.Load(info.Victim); ok {
				res.DeadlockVictims[t.(TxType)]++
			}
			n := len(info.Members)
			if n >= len(res.DeadlockCycleLengths) {
				n = 0
			}
			res.DeadlockCycleLengths[n]++
		},
	})
	defer mgr.Close()
	for _, t := range TxTypes {
		res.PerType[t] = &TypeStats{}
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	slot := 0
	for client := 0; client < cfg.Clients; client++ {
		for _, txType := range TxTypes {
			for i := 0; i < cfg.Mix[txType]; i++ {
				slot++
				wg.Add(1)
				go func(txType TxType, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					r := &runner{m: mgr, cat: cat, rng: rng, waitOp: cfg.WaitAfterOperation, updateLocks: cfg.UseUpdateLocks}
					if cfg.MaxStartDelay > 0 {
						time.Sleep(time.Duration(rng.Int63n(int64(cfg.MaxStartDelay))))
					}
					for time.Now().Before(deadline) {
						txn := mgr.Begin(cfg.Isolation)
						if ltx := txn.LockTx(); ltx != nil {
							txTypes.Store(ltx.ID(), txType)
						}
						t0 := time.Now()
						err := r.run(txType, txn)
						if err == nil {
							err = txn.Commit()
							if err == nil {
								mu.Lock()
								res.PerType[txType].record(time.Since(t0))
								mu.Unlock()
							}
						} else {
							txn.Abort()
							if node.IsAbortWorthy(err) {
								mu.Lock()
								res.PerType[txType].Aborted++
								mu.Unlock()
							} else {
								// Unexpected failures indicate an engine bug;
								// surface them loudly.
								panic(fmt.Sprintf("tamix: %s: %v", txType, err))
							}
						}
						if cfg.WaitAfterCommit > 0 {
							time.Sleep(cfg.WaitAfterCommit)
						}
					}
				}(txType, cfg.Seed+int64(slot)*7919)
			}
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	// Every run doubles as an integrity check: a protocol that let an
	// interleaving corrupt the document must not produce a result.
	if err := doc.Verify(); err != nil {
		return nil, fmt.Errorf("tamix: document corrupted after run under %s: %w", cfg.Protocol, err)
	}

	for _, t := range TxTypes {
		res.Committed += res.PerType[t].Committed
		res.Aborted += res.PerType[t].Aborted
	}
	ls := mgr.LockManager().Stats()
	res.Deadlocks = ls.Deadlocks
	res.ConversionDeadlocks = ls.ConversionDeadlocks
	res.SubtreeDeadlocks = ls.SubtreeDeadlocks
	res.Timeouts = ls.Timeouts
	res.LockRequests = ls.Requests
	res.LockCacheHits = ls.CacheHits
	res.LockWaits = ls.Waits
	res.PartitionWaits = mgr.LockManager().PartitionWaits()
	return res, nil
}
