package tamix

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/tx"
	"repro/internal/wal"
)

// Config describes one TaMix benchmark run.
type Config struct {
	// Protocol names the lock protocol under test.
	Protocol string
	// Isolation is the isolation level of every transaction.
	Isolation tx.Level
	// Depth is the lock-depth parameter (ignored by depth-unaware
	// protocols; negative = unlimited).
	Depth int
	// Clients is the number of TaMix clients (paper: 3).
	Clients int
	// Mix is the per-client transaction mix: how many concurrent slots of
	// each type every client keeps active (paper CLUSTER1: 9 TAqueryBook,
	// 5 TAchapter, 2 TArenameTopic, 8 TAlendAndReturn = 24 per client, 72
	// total).
	Mix map[TxType]int
	// Duration is the measurement interval (paper: 5 minutes).
	Duration time.Duration
	// WaitAfterCommit is the client think time between transactions
	// (paper: 2500 ms).
	WaitAfterCommit time.Duration
	// WaitAfterOperation is the pause between operations inside a
	// transaction (paper: 100 ms).
	WaitAfterOperation time.Duration
	// MaxStartDelay staggers slot start-up (paper: 0-5000 ms random).
	MaxStartDelay time.Duration
	// LockTimeout bounds lock waits; it should comfortably exceed the
	// expected blocking times (a timeout aborts like a deadlock victim).
	LockTimeout time.Duration
	// MaxRestarts caps how often one logical transaction is restarted after
	// a deadlock or lock-timeout abort before the slot gives up on it
	// (DefaultMaxRestarts when zero; negative disables restarts). The
	// paper's contest counts committed work, which presumes victims are
	// retried until the mix completes — this is that retry loop.
	MaxRestarts int
	// RestartBackoff is the base of the randomized exponential backoff
	// slept before each restart (DefaultRestartBackoff when zero). The
	// actual sleep is jittered to 50-150% and doubles per restart up to
	// RestartMaxBackoff.
	RestartBackoff time.Duration
	// RestartMaxBackoff caps the restart backoff (DefaultRestartMaxBackoff
	// when zero).
	RestartMaxBackoff time.Duration
	// Faults, when non-nil, wraps the document's backend in a seeded
	// FaultBackend. Injection is armed only for the measurement interval:
	// document generation and the post-run verification run fault-free.
	Faults *pagestore.FaultConfig
	// Retry overrides the buffer manager's transient-fault retry policy
	// (pagestore.DefaultRetryPolicy when nil).
	Retry *pagestore.RetryPolicy
	// UseUpdateLocks makes TAlendAndReturn declare its write intent with
	// update-mode locks (URIX's U, taDOM's SU) instead of converting read
	// locks — an ablation on the paper's conversion-deadlock observation.
	UseUpdateLocks bool
	// Bib sizes the document.
	Bib BibConfig
	// Metrics, when non-nil, receives every layer's instruments for this
	// run (lock.*, buffer.*, tx.*, and wal.* with WAL set). Use a fresh
	// registry per run — instruments accumulate for the registry's
	// lifetime, so sharing one across runs mixes protocols. Result.Metrics
	// carries the end-of-run snapshot.
	Metrics *metrics.Registry
	// WAL attaches an in-memory write-ahead log to the run: operations
	// append redo/undo records and every commit forces the log, so commit
	// latency includes a durability wait and the wal.* instruments
	// (append/force latency, group-commit batch size) see the measured
	// workload. The log lives in memory — it exercises the logging path,
	// not the disk.
	WAL bool
	// Seed drives all randomness of the run.
	Seed int64
	// Remote, when non-empty, runs the workload against an xtcd server at
	// this address instead of an in-process engine: every slot opens its own
	// session (the server's one-transaction-per-session discipline) and the
	// post-run audits and lock statistics are fetched over the wire. Fields
	// that configure the in-process engine (Faults, Retry, WAL, LockTimeout,
	// Metrics for engine layers, Bib) are ignored — the server owns its
	// engine configuration.
	Remote string
	// RemoteConns is the number of pooled TCP connections a remote run
	// stripes its sessions over (default 4).
	RemoteConns int
	// RemoteClient tunes the xtcd client pool a remote run dials (zero value
	// = client defaults): chaos harnesses inject fault-wrapping dialers,
	// faster heartbeats, or tighter redial budgets here. The Conns and
	// Metrics fields are overridden by RemoteConns and Metrics.
	RemoteClient client.Options
}

// DefaultMaxRestarts caps restart attempts per logical transaction.
const DefaultMaxRestarts = 10

// DefaultRestartBackoff is the base restart backoff.
const DefaultRestartBackoff = 2 * time.Millisecond

// DefaultRestartMaxBackoff caps the restart backoff doubling.
const DefaultRestartMaxBackoff = 100 * time.Millisecond

// TypeStats aggregates outcomes for one transaction type — the paper's
// per-type metrics (committed, aborted, min/max/avg duration) plus the
// restart accounting of the recovery layer.
type TypeStats struct {
	Committed int
	Aborted   int
	// Restarts counts abort-and-retry cycles: every deadlock or timeout
	// abort that was given another attempt.
	Restarts int
	// RestartWait is the total backoff slept before restarts.
	RestartWait time.Duration
	// Dropped counts logical transactions abandoned after MaxRestarts
	// consecutive aborts.
	Dropped  int
	TotalDur time.Duration
	// MinDur is the shortest committed duration, -1 while no transaction
	// of the type has committed (0 is a legitimate duration on coarse
	// clocks, so it cannot double as the "unset" sentinel).
	MinDur time.Duration
	MaxDur time.Duration
}

// NewTypeStats returns an empty TypeStats with MinDur at its -1 "unset"
// sentinel. Aggregators that build TypeStats by hand must start from this
// (or handle MinDur<0) or a zero-duration commit is lost to the old
// 0-as-unset ambiguity.
func NewTypeStats() *TypeStats {
	return &TypeStats{MinDur: -1}
}

// AvgDur returns the mean duration of committed transactions.
func (s *TypeStats) AvgDur() time.Duration {
	if s.Committed == 0 {
		return 0
	}
	return s.TotalDur / time.Duration(s.Committed)
}

func (s *TypeStats) record(d time.Duration) {
	s.Committed++
	s.TotalDur += d
	if s.MinDur < 0 || d < s.MinDur {
		s.MinDur = d
	}
	if d > s.MaxDur {
		s.MaxDur = d
	}
}

// Result is the outcome of one TaMix run.
type Result struct {
	// Protocol, Isolation, and Depth echo the configuration.
	Protocol  string
	Isolation tx.Level
	Depth     int
	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration
	// PerType holds the per-transaction-type statistics.
	PerType map[TxType]*TypeStats
	// Committed and Aborted are the totals across types.
	Committed, Aborted int
	// Restarts, RestartWait, and Dropped total the restart loop's work:
	// retried aborts, backoff time slept, and logical transactions given up
	// after the restart cap.
	Restarts    int
	RestartWait time.Duration
	Dropped     int
	// Deadlocks counts detected cycles, split into the paper's two classes.
	Deadlocks, ConversionDeadlocks, SubtreeDeadlocks uint64
	// Timeouts counts lock waits that hit the timeout.
	Timeouts uint64
	// LockRequests is the total number of lock requests issued.
	LockRequests uint64
	// LockCacheHits counts requests answered by the per-transaction lock
	// cache without touching the shared lock table.
	LockCacheHits uint64
	// LockWaits counts requests that blocked.
	LockWaits uint64
	// PartitionWaits is the per-partition blocked-request profile of the
	// striped lock table — where the contention actually landed.
	PartitionWaits []uint64
	// FaultsInjected totals the storage faults injected during the run
	// (zero without fault injection).
	FaultsInjected uint64
	// TornWrites counts injected writes that persisted a torn page image.
	TornWrites uint64
	// BufferRetries counts buffer-manager re-attempts after transient
	// storage faults; BufferRetryFailures counts operations whose budget
	// ran out (escalated to permanent).
	BufferRetries, BufferRetryFailures uint64
	// DeadlockVictims attributes deadlock aborts to the victim's
	// transaction type (the XTCdeadlockDetector analysis of Section 4.2).
	DeadlockVictims map[TxType]uint64
	// DeadlockCycleLengths histograms the detected cycle sizes (index =
	// number of transactions on the cycle; index 0 collects longer ones).
	DeadlockCycleLengths [8]uint64
	// Metrics is the end-of-run snapshot of Config.Metrics (nil when the
	// run had no registry): counters plus latency distributions for lock
	// waits, buffer fixes, WAL forces, commits. Captured after the
	// measurement interval but before the verification pass, so audit
	// traffic does not pollute the distributions.
	Metrics *metrics.Snapshot
}

// Throughput returns committed transactions, normalized to the paper's
// 5-minute interval so numbers are comparable across scaled-down runs.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Committed) * (5 * time.Minute).Seconds() / r.Elapsed.Seconds()
}

// sleepCtx sleeps d unless ctx is canceled first; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Run executes one TaMix benchmark: it generates the bib document, starts
// Clients×Mix transaction slots, keeps each slot running transactions of
// its type until Duration elapses, and gathers the metrics.
//
// Failure semantics: transactions aborted as deadlock victims or by lock
// timeouts are restarted with randomized exponential backoff up to
// MaxRestarts. Any other engine error cancels the run via context — no
// worker panics — and Run returns the first such error, classified
// (transient/permanent/unclassified) in its message. A successful run ends
// with two audits: the document must pass Verify and the lock table must be
// empty (no leaked locks).
func Run(cfg Config) (*Result, error) {
	if cfg.Remote != "" {
		return runRemote(cfg)
	}
	p, err := protocol.Parse(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	// The snapshot contestant needs commit-consistent WAL positions to pin
	// its read views to, so it always runs with the log attached.
	snapReads := protocol.UsesSnapshotReads(p)
	useWAL := cfg.WAL || snapReads
	var backend pagestore.Backend = pagestore.NewMemBackend()
	var fb *pagestore.FaultBackend
	if cfg.Faults != nil {
		fb = pagestore.NewFaultBackend(backend, *cfg.Faults)
		fb.Disarm() // generation must run fault-free
		backend = fb
	}
	bib := cfg.Bib
	bib.Metrics = cfg.Metrics
	doc, cat, err := GenerateBib(backend, bib)
	if err != nil {
		return nil, err
	}
	defer doc.Close()
	if cfg.Retry != nil {
		doc.Store().SetRetryPolicy(*cfg.Retry)
	}
	var wlog *wal.Log
	if useWAL {
		wlog, err = wal.Open(wal.NewMemSegmentStore(), wal.Config{Metrics: cfg.Metrics})
		if err != nil {
			return nil, err
		}
		defer wlog.Close()
		if err := doc.AttachWAL(wlog); err != nil {
			return nil, err
		}
	}

	lockTimeout := cfg.LockTimeout
	if lockTimeout <= 0 {
		lockTimeout = 5 * time.Second
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = DefaultMaxRestarts
	} else if maxRestarts < 0 {
		maxRestarts = 0
	}
	restartBase := cfg.RestartBackoff
	if restartBase <= 0 {
		restartBase = DefaultRestartBackoff
	}
	restartCap := cfg.RestartMaxBackoff
	if restartCap <= 0 {
		restartCap = DefaultRestartMaxBackoff
	}

	// Deadlock analysis: every lock-manager transaction is registered with
	// its TaMix type so detected cycles can be attributed.
	var txTypes sync.Map // lock.TxID -> TxType
	res := &Result{
		Protocol:        cfg.Protocol,
		Isolation:       cfg.Isolation,
		Depth:           cfg.Depth,
		PerType:         make(map[TxType]*TypeStats),
		DeadlockVictims: make(map[TxType]uint64),
	}
	var dlMu sync.Mutex
	mgr := node.New(doc, p, node.Options{
		Depth:       cfg.Depth,
		LockTimeout: lockTimeout,
		Metrics:     cfg.Metrics,
		OnDeadlock: func(info lock.DeadlockInfo) {
			dlMu.Lock()
			defer dlMu.Unlock()
			if t, ok := txTypes.Load(info.Victim); ok {
				res.DeadlockVictims[t.(TxType)]++
			}
			n := len(info.Members)
			if n >= len(res.DeadlockCycleLengths) {
				n = 0
			}
			res.DeadlockCycleLengths[n]++
		},
	})
	defer mgr.Close()
	if wlog != nil {
		mgr.TxManager().SetWAL(wlog)
	}
	if snapReads {
		mgr.EnableSnapshotReads()
	}
	for _, t := range TxTypes {
		res.PerType[t] = NewTypeStats()
	}

	// Graceful degradation: the first engine error cancels every worker
	// through ctx and becomes Run's return value. Workers never panic.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var failOnce sync.Once
	var runErr error
	fail := func(err error) {
		failOnce.Do(func() {
			runErr = err
			cancel()
		})
	}

	eng := newLocalEngine(mgr, cfg.Isolation)
	eng.snapReads = snapReads
	var mu sync.Mutex
	var wg sync.WaitGroup
	if fb != nil {
		fb.Arm()
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	slot := 0
	for client := 0; client < cfg.Clients; client++ {
		for _, txType := range TxTypes {
			for i := 0; i < cfg.Mix[txType]; i++ {
				slot++
				wg.Add(1)
				go func(txType TxType, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					r := &runner{m: eng, cat: cat, rng: rng, waitOp: cfg.WaitAfterOperation, updateLocks: cfg.UseUpdateLocks}
					if cfg.MaxStartDelay > 0 {
						if !sleepCtx(ctx, time.Duration(rng.Int63n(int64(cfg.MaxStartDelay)))) {
							return
						}
					}
					for time.Now().Before(deadline) && ctx.Err() == nil {
						if !runOnce(ctx, cfg, eng, r, res, &mu, &txTypes, txType,
							deadline, maxRestarts, restartBase, restartCap, fail) {
							return
						}
						if !sleepCtx(ctx, cfg.WaitAfterCommit) {
							return
						}
					}
				}(txType, cfg.Seed+int64(slot)*7919)
			}
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if fb != nil {
		// Verification and teardown read the document without injection.
		fb.Disarm()
		fs := fb.Stats()
		res.FaultsInjected = fs.TotalInjected()
		res.TornWrites = fs.TornWrites
	}
	bs := doc.Store().Stats()
	res.BufferRetries = bs.Retries
	res.BufferRetryFailures = bs.RetryFailures
	if cfg.Metrics != nil {
		res.Metrics = cfg.Metrics.Snapshot()
	}

	if runErr != nil {
		return nil, fmt.Errorf("tamix: run failed under %s (%s fault): %w",
			cfg.Protocol, pagestore.Classify(runErr), runErr)
	}

	// Every run doubles as an integrity check: a protocol that let an
	// interleaving corrupt the document must not produce a result.
	if err := doc.Verify(); err != nil {
		return nil, fmt.Errorf("tamix: document corrupted after run under %s: %w", cfg.Protocol, err)
	}
	// ... and as a leak check: with every transaction committed or aborted,
	// a non-empty lock table means a release path was skipped.
	if err := mgr.LockManager().LeakCheck(); err != nil {
		return nil, fmt.Errorf("tamix: run under %s leaked locks: %w", cfg.Protocol, err)
	}
	if snapReads {
		// Snapshot runs audit the version layer the same way: every snapshot
		// registration must have been dropped, and after a final prune at the
		// drained watermark no retired page version may survive.
		if err := mgr.TxManager().SnapshotLeakCheck(); err != nil {
			return nil, fmt.Errorf("tamix: run under %s leaked snapshots: %w", cfg.Protocol, err)
		}
		w := mgr.TxManager().SnapshotWatermark()
		doc.Store().PruneVersions(w)
		if n := doc.Store().StaleVersions(w); n > 0 {
			return nil, fmt.Errorf("tamix: run under %s retained %d stale page versions below watermark %d",
				cfg.Protocol, n, w)
		}
	}

	for _, t := range TxTypes {
		st := res.PerType[t]
		res.Committed += st.Committed
		res.Aborted += st.Aborted
		res.Restarts += st.Restarts
		res.RestartWait += st.RestartWait
		res.Dropped += st.Dropped
	}
	ls := mgr.LockManager().Stats()
	res.Deadlocks = ls.Deadlocks
	res.ConversionDeadlocks = ls.ConversionDeadlocks
	res.SubtreeDeadlocks = ls.SubtreeDeadlocks
	res.Timeouts = ls.Timeouts
	res.LockRequests = ls.Requests
	res.LockCacheHits = ls.CacheHits
	res.LockWaits = ls.Waits
	res.PartitionWaits = mgr.LockManager().PartitionWaits()
	return res, nil
}

// runOnce drives one logical transaction to commit, restarting it with
// randomized exponential backoff after deadlock/timeout aborts. It reports
// false when the worker should exit (context canceled or engine failure).
func runOnce(ctx context.Context, cfg Config, eng Engine, r *runner,
	res *Result, mu *sync.Mutex, txTypes *sync.Map, txType TxType,
	deadline time.Time, maxRestarts int, backoffBase, backoffCap time.Duration,
	fail func(error)) bool {

	restarts := 0
	backoff := backoffBase
	for {
		txn, err := eng.Begin(txType.ReadOnly())
		if err != nil {
			fail(fmt.Errorf("tamix: %s: begin: %w", txType, err))
			return false
		}
		// Deadlock-victim attribution needs the lock-layer transaction id;
		// remote engines cannot provide one, so attribution is best-effort.
		if lt, ok := txn.(interface{ LockTx() *lock.Tx }); ok {
			if ltx := lt.LockTx(); ltx != nil {
				txTypes.Store(ltx.ID(), txType)
			}
		}
		t0 := time.Now()
		err = r.run(txType, txn)
		if err == nil {
			err = txn.Commit()
			if err == nil {
				mu.Lock()
				res.PerType[txType].record(time.Since(t0))
				mu.Unlock()
				return true
			}
			if !node.IsAbortWorthy(err) {
				fail(fmt.Errorf("tamix: %s: commit: %w", txType, err))
				return false
			}
			// An abort-worthy commit failure (connection lost to a server
			// bounce, request canceled by a draining server) falls through to
			// the restart path: count it as an abort and rerun. The resume's
			// fate report resolves interrupted commits that actually landed
			// (those return nil above); only a commit whose fate was
			// unknowable — the server process itself died — still leaves the
			// committed count a lower bound across restarts.
		}
		if aerr := txn.Abort(); aerr != nil && !errors.Is(aerr, tx.ErrNotActive) {
			// A failed rollback is unrecoverable: the document may hold
			// partial effects of an aborted transaction.
			fail(fmt.Errorf("tamix: %s: abort: %w", txType, aerr))
			return false
		}
		if !node.IsAbortWorthy(err) {
			// Unexpected failures (including permanent storage faults)
			// cancel the run instead of panicking the process.
			fail(fmt.Errorf("tamix: %s: %w", txType, err))
			return false
		}
		mu.Lock()
		res.PerType[txType].Aborted++
		mu.Unlock()
		if restarts >= maxRestarts {
			mu.Lock()
			res.PerType[txType].Dropped++
			mu.Unlock()
			return true
		}
		if !time.Now().Before(deadline) {
			// Out of measurement time: do not restart past the interval.
			return true
		}
		restarts++
		// Randomized exponential backoff: 50-150% of the current step,
		// doubling up to the cap, so colliding victims desynchronize.
		d := backoff/2 + time.Duration(r.rng.Int63n(int64(backoff)))
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
		mu.Lock()
		res.PerType[txType].Restarts++
		res.PerType[txType].RestartWait += d
		mu.Unlock()
		if !sleepCtx(ctx, d) {
			return false
		}
	}
}
