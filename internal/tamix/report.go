package tamix

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Report is the machine-readable form of one TaMix run: the Result counters
// plus the latency distributions from the run's metrics registry, shaped for
// JSON. Fields use stable snake_case names — scripts parse this, so renaming
// a field is a breaking change (the schema test pins the layout).
type Report struct {
	Protocol   string  `json:"protocol"`
	Isolation  string  `json:"isolation"`
	Depth      int     `json:"depth"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Throughput float64 `json:"throughput_tx_per_5min"`

	Committed     int     `json:"committed"`
	Aborted       int     `json:"aborted"`
	Restarts      int     `json:"restarts"`
	RestartWaitMS float64 `json:"restart_wait_ms"`
	Dropped       int     `json:"dropped"`

	Deadlocks           uint64 `json:"deadlocks"`
	ConversionDeadlocks uint64 `json:"conversion_deadlocks"`
	SubtreeDeadlocks    uint64 `json:"subtree_deadlocks"`
	Timeouts            uint64 `json:"timeouts"`

	LockRequests  uint64 `json:"lock_requests"`
	LockCacheHits uint64 `json:"lock_cache_hits"`
	LockWaits     uint64 `json:"lock_waits"`

	FaultsInjected      uint64 `json:"faults_injected"`
	TornWrites          uint64 `json:"torn_writes"`
	BufferRetries       uint64 `json:"buffer_retries"`
	BufferRetryFailures uint64 `json:"buffer_retry_failures"`

	PerType map[string]TypeReport `json:"per_type"`

	// Latencies maps histogram names (lock.wait, buffer.fix_miss,
	// wal.force, tx.commit, ...) to their percentile digests. Empty when
	// the run carried no metrics registry.
	Latencies map[string]metrics.LatencySummary `json:"latencies,omitempty"`
	// Counters carries the registry's counter values (lock.*, buffer.*,
	// wal.*, tx.* namespaces). Empty without a registry.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// TypeReport is the per-transaction-type slice of a Report.
type TypeReport struct {
	Committed int     `json:"committed"`
	Aborted   int     `json:"aborted"`
	Restarts  int     `json:"restarts"`
	Dropped   int     `json:"dropped"`
	AvgMS     float64 `json:"avg_ms"`
	// MinMS/MaxMS are zero when the type never committed (MinDur's -1
	// "unset" sentinel is not exported; absence of commits is visible in
	// Committed).
	MinMS float64 `json:"min_ms"`
	MaxMS float64 `json:"max_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Report converts the Result into its JSON form.
func (r *Result) Report() *Report {
	rep := &Report{
		Protocol:            r.Protocol,
		Isolation:           r.Isolation.String(),
		Depth:               r.Depth,
		ElapsedMS:           ms(r.Elapsed),
		Throughput:          r.Throughput(),
		Committed:           r.Committed,
		Aborted:             r.Aborted,
		Restarts:            r.Restarts,
		RestartWaitMS:       ms(r.RestartWait),
		Dropped:             r.Dropped,
		Deadlocks:           r.Deadlocks,
		ConversionDeadlocks: r.ConversionDeadlocks,
		SubtreeDeadlocks:    r.SubtreeDeadlocks,
		Timeouts:            r.Timeouts,
		LockRequests:        r.LockRequests,
		LockCacheHits:       r.LockCacheHits,
		LockWaits:           r.LockWaits,
		FaultsInjected:      r.FaultsInjected,
		TornWrites:          r.TornWrites,
		BufferRetries:       r.BufferRetries,
		BufferRetryFailures: r.BufferRetryFailures,
		PerType:             map[string]TypeReport{},
	}
	for typ, st := range r.PerType {
		tr := TypeReport{
			Committed: st.Committed,
			Aborted:   st.Aborted,
			Restarts:  st.Restarts,
			Dropped:   st.Dropped,
			AvgMS:     ms(st.AvgDur()),
			MaxMS:     ms(st.MaxDur),
		}
		if st.MinDur >= 0 {
			tr.MinMS = ms(st.MinDur)
		}
		rep.PerType[typ.String()] = tr
	}
	if r.Metrics != nil {
		rep.Latencies = map[string]metrics.LatencySummary{}
		for _, name := range r.Metrics.HistogramNames() {
			rep.Latencies[name] = r.Metrics.Summary(name)
		}
		if len(r.Metrics.Counters) > 0 {
			rep.Counters = make(map[string]uint64, len(r.Metrics.Counters))
			for k, v := range r.Metrics.Counters {
				rep.Counters[k] = v
			}
		}
	}
	return rep
}

// WriteJSON writes the report as one indented JSON document.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ContestReport is the run report of a whole contest: every protocol's
// Report, ranked by throughput — the machine-readable twin of cmd/contest's
// table.
type ContestReport struct {
	// DocScale and TimeScale echo the contest's scaling knobs.
	DocScale  float64 `json:"doc_scale"`
	TimeScale float64 `json:"time_scale"`
	Depth     int     `json:"depth"`
	Seed      int64   `json:"seed"`
	// Results is ordered by rank (descending throughput).
	Results []RankedReport `json:"results"`
}

// RankedReport is one contest row.
type RankedReport struct {
	Rank  int    `json:"rank"`
	Group string `json:"group"`
	*Report
}

// Rank sorts the reports by throughput (descending, stable) and assigns
// ranks starting at 1.
func (c *ContestReport) Rank() {
	sort.SliceStable(c.Results, func(i, j int) bool {
		return c.Results[i].Throughput > c.Results[j].Throughput
	})
	for i := range c.Results {
		c.Results[i].Rank = i + 1
	}
}

// WriteJSON writes the contest report as one indented JSON document.
func (c *ContestReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// String summarizes the report in one line (debug aid).
func (rep *Report) String() string {
	return fmt.Sprintf("%s/%s depth=%d: %.1f tx/5min (%d committed, %d aborted, %d deadlocks)",
		rep.Protocol, rep.Isolation, rep.Depth, rep.Throughput, rep.Committed, rep.Aborted, rep.Deadlocks)
}
