package tamix

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/xmlmodel"
)

// TxType enumerates the TaMix transaction types (Section 4.2).
type TxType int

const (
	// TAqueryBook jumps to a random book by ID and reads its subtree with
	// navigational operations — the reader load of CLUSTER1.
	TAqueryBook TxType = iota
	// TAchapter has the same read profile followed by an update of a
	// chapter's summary text node.
	TAchapter
	// TAdelBook reads a random topic and deletes one of its book subtrees —
	// the CLUSTER2 transaction.
	TAdelBook
	// TAlendAndReturn locates a random book and either attaches a new lend
	// subtree under its history or removes one — the lock-conversion
	// workhorse (the Figure 3b scenario).
	TAlendAndReturn
	// TArenameTopic locates a topic by ID and renames it (DOM 3
	// renameNode).
	TArenameTopic
)

// String implements fmt.Stringer.
func (t TxType) String() string {
	switch t {
	case TAqueryBook:
		return "TAqueryBook"
	case TAchapter:
		return "TAchapter"
	case TAdelBook:
		return "TAdelBook"
	case TAlendAndReturn:
		return "TAlendAndReturn"
	case TArenameTopic:
		return "TArenameTopic"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// TxTypes lists all transaction types in presentation order.
var TxTypes = []TxType{TAqueryBook, TAchapter, TAdelBook, TAlendAndReturn, TArenameTopic}

// ReadOnly reports whether the transaction type never updates the document.
// TAqueryBook is the mix's pure reader; engines with snapshot reads run it
// at tx.LevelSnapshot so it bypasses the lock manager entirely.
func (t TxType) ReadOnly() bool { return t == TAqueryBook }

// runner executes transaction bodies against one engine (in-process or
// remote; see Engine).
type runner struct {
	m      Engine
	cat    *Catalog
	rng    *rand.Rand
	waitOp time.Duration
	// updateLocks switches TAlendAndReturn to declare its write intent with
	// an update-mode subtree lock (URIX's U, taDOM's SU) instead of the
	// read-then-convert pattern of Figure 3b — the ablation behind the
	// paper's observation that lock conversions are the dominant deadlock
	// source.
	updateLocks bool
}

// pause models the client think time between operations
// (waitAfterOperation).
func (r *runner) pause() {
	if r.waitOp > 0 {
		time.Sleep(r.waitOp)
	}
}

// errVanished marks benign races on documents shrunk by concurrent deletes;
// the transaction commits as a no-op.
var errVanished = errors.New("tamix: target vanished")

// run executes one transaction body. The caller commits on nil and aborts
// on error.
func (r *runner) run(t TxType, txn Txn) error {
	var err error
	switch t {
	case TAqueryBook:
		err = r.queryBook(txn)
	case TAchapter:
		err = r.chapter(txn)
	case TAdelBook:
		err = r.delBook(txn)
	case TAlendAndReturn:
		err = r.lendAndReturn(txn)
	case TArenameTopic:
		err = r.renameTopic(txn)
	default:
		err = fmt.Errorf("tamix: unknown transaction type %v", t)
	}
	if errors.Is(err, errVanished) || errors.Is(err, storage.ErrNodeNotFound) {
		return nil
	}
	return err
}

func (r *runner) randBook() string { return r.cat.BookIDs[r.rng.Intn(len(r.cat.BookIDs))] }
func (r *runner) randTopic() string {
	return r.cat.TopicIDs[r.rng.Intn(len(r.cat.TopicIDs))]
}
func (r *runner) randPerson() string {
	return r.cat.PersonIDs[r.rng.Intn(len(r.cat.PersonIDs))]
}

// traverseBook is the shared read profile of TAqueryBook and TAchapter:
// jump to the book, then visit each child subtree in document order
// (Figure 3b: NR on the book, subtree reads on title, author, ...). It
// returns the IDs of the chapter summary text nodes encountered.
func (r *runner) traverseBook(txn Txn, bookID string) (summaries []splid.ID, err error) {
	book, err := r.m.JumpToID(txn, bookID)
	if err != nil {
		return nil, err
	}
	r.pause()
	child, err := r.m.FirstChild(txn, book.ID)
	if err != nil {
		return nil, err
	}
	sumSur, _ := r.m.LookupName("summary")
	for !child.ID.IsNull() {
		frag, err := r.m.ReadFragment(txn, child.ID, false)
		if err != nil {
			return nil, err
		}
		for i, n := range frag {
			if n.Kind == xmlmodel.KindElement && n.Name == sumSur && i+1 < len(frag) {
				if txt := frag[i+1]; txt.Kind == xmlmodel.KindText {
					summaries = append(summaries, txt.ID)
				}
			}
		}
		r.pause()
		child, err = r.m.NextSibling(txn, child.ID)
		if err != nil {
			return nil, err
		}
	}
	return summaries, nil
}

func (r *runner) queryBook(txn Txn) error {
	_, err := r.traverseBook(txn, r.randBook())
	return err
}

func (r *runner) chapter(txn Txn) error {
	summaries, err := r.traverseBook(txn, r.randBook())
	if err != nil {
		return err
	}
	if len(summaries) == 0 {
		return errVanished
	}
	r.pause()
	target := summaries[r.rng.Intn(len(summaries))]
	return r.m.SetValue(txn, target,
		[]byte(fmt.Sprintf("Revised at %d by tx %d.", time.Now().UnixNano(), txn.ID())))
}

func (r *runner) delBook(txn Txn) error {
	// Same operational read profile as TAqueryBook, but on a random topic:
	// jump to the topic and traverse each book subtree navigationally, then
	// delete one book subtree. Under the *-2PL protocols both the traversal
	// (node-by-node T/CS locks) and the delete (IDX/M subtree scan) are
	// expensive; the intention-lock protocols cover each book with one
	// subtree lock — the CLUSTER2 gap of Figure 11.
	topic, err := r.m.JumpToID(txn, r.randTopic())
	if err != nil {
		return err
	}
	r.pause()
	var books []splid.ID
	child, err := r.m.FirstChild(txn, topic.ID)
	if err != nil {
		return err
	}
	for !child.ID.IsNull() {
		books = append(books, child.ID)
		if _, err := r.m.ReadFragment(txn, child.ID, false); err != nil {
			return err
		}
		r.pause()
		child, err = r.m.NextSibling(txn, child.ID)
		if err != nil {
			return err
		}
	}
	if len(books) == 0 {
		return errVanished
	}
	r.pause()
	return r.m.DeleteSubtree(txn, books[r.rng.Intn(len(books))])
}

func (r *runner) lendAndReturn(txn Txn) error {
	book, err := r.m.JumpToID(txn, r.randBook())
	if err != nil {
		return err
	}
	r.pause()
	// getChildNodes on history: the LR lock whose later conversion to CX is
	// exactly the scenario of Figures 3b and 4. In update-lock mode the
	// intent is declared at first touch instead (SU/U via
	// UpdateLastChildFragment), serializing intending writers without the
	// conversion deadlock.
	var history xmlmodel.Node
	var lends []xmlmodel.Node
	if r.updateLocks {
		h, frag, err := r.m.UpdateLastChildFragment(txn, book.ID)
		if err != nil {
			return err
		}
		if h.ID.IsNull() {
			return errVanished
		}
		history = h
		for _, n := range frag {
			if n.Kind == xmlmodel.KindElement && n.ID.ChildOf(history.ID) {
				lends = append(lends, n)
			}
		}
	} else {
		history, err = r.m.LastChild(txn, book.ID)
		if err != nil {
			return err
		}
		if history.ID.IsNull() {
			return errVanished
		}
		lends, err = r.m.GetChildren(txn, history.ID)
		if err != nil {
			return err
		}
	}
	r.pause()
	if r.rng.Intn(2) == 0 || len(lends) <= 1 {
		// Lend the book: attach lend' with person and return attributes.
		lend, err := r.m.AppendElement(txn, history.ID, "lend")
		if err != nil {
			return err
		}
		r.pause()
		if err := r.m.SetAttribute(txn, lend.ID, "person", []byte(r.randPerson())); err != nil {
			return err
		}
		return r.m.SetAttribute(txn, lend.ID, "return",
			[]byte(time.Now().Format("2006-01-02")))
	}
	// Return the book: remove a lend entry.
	victim := lends[r.rng.Intn(len(lends))]
	return r.m.DeleteSubtree(txn, victim.ID)
}

// renameNames cycles TArenameTopic's names so every rename really changes
// the element's name.
var renameNames = []string{"topic", "theme", "subject", "category"}

func (r *runner) renameTopic(txn Txn) error {
	topic, err := r.m.JumpToID(txn, r.randTopic())
	if err != nil {
		return err
	}
	r.pause()
	return r.m.Rename(txn, topic.ID, renameNames[r.rng.Intn(len(renameNames))])
}
