// Package tamix implements the TaMix framework of Section 4: the scalable
// bib library document, the five transaction types emulating a library
// application, the multi-client coordinator that keeps a fixed number of
// transactions active, and the measurement machinery (committed/aborted
// counts, durations, deadlock analysis) behind the paper's Figures 7-11.
package tamix

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/pagestore"
	"repro/internal/storage"
)

// BibConfig sizes the generated bib document (Section 4.3). The zero value
// is invalid; use DefaultBibConfig (paper scale) or Scaled.
type BibConfig struct {
	// Persons is the number of person elements (paper: 1000).
	Persons int
	// Authors is the number of distinct author names used (paper: 100).
	Authors int
	// Topics is the number of topic elements (paper: 100).
	Topics int
	// BooksPerTopic is the number of books under each topic (paper: 20).
	BooksPerTopic int
	// ChaptersMin/ChaptersMax bound each book's chapter count (paper: 5-10).
	ChaptersMin, ChaptersMax int
	// LendsMin/LendsMax bound each history's lend count (paper: 9-10).
	LendsMin, LendsMax int
	// Dist is the SPLID labeling gap.
	Dist uint32
	// BufferFrames sizes the document's page buffer
	// (pagestore.DefaultFrames when zero). Chaos tests shrink it so the
	// run does real backend I/O instead of staying buffer-resident.
	BufferFrames int
	// BufferShards requests a page-table shard count
	// (pagestore.DefaultShards when zero; clamped to the pool size).
	BufferShards int
	// FlusherInterval enables the buffer pool's background flusher
	// (disabled when zero).
	FlusherInterval time.Duration
	// CheckpointInterval enables flusher-driven fuzzy checkpoints on the
	// document's WAL (disabled when zero; requires an attached WAL).
	CheckpointInterval time.Duration
	// Metrics, when non-nil, receives the document's buffer-pool
	// instruments (the buffer.* namespace). Generation traffic is recorded
	// too; harnesses that only want measurement-interval numbers snapshot
	// before and after and subtract, or simply accept the warm-up tail.
	Metrics *metrics.Registry
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultBibConfig is the paper's composition: 1000 persons, 100 authors,
// 2000 books equally distributed across 100 topics, 5-10 chapters per book,
// 9-10 lends per history.
func DefaultBibConfig() BibConfig {
	return BibConfig{
		Persons:       1000,
		Authors:       100,
		Topics:        100,
		BooksPerTopic: 20,
		ChaptersMin:   5,
		ChaptersMax:   10,
		LendsMin:      9,
		LendsMax:      10,
		Dist:          8,
		Seed:          1,
	}
}

// Scaled shrinks the paper configuration by factor s (0 < s <= 1), keeping
// the 20-books-per-topic ratio, for affordable test and benchmark runs.
func Scaled(s float64) BibConfig {
	c := DefaultBibConfig()
	scale := func(n int) int {
		v := int(float64(n) * s)
		if v < 1 {
			v = 1
		}
		return v
	}
	c.Persons = scale(c.Persons)
	c.Authors = scale(c.Authors)
	c.Topics = scale(c.Topics)
	return c
}

// Catalog records the identifiers the transaction types jump to: TaMix
// picks random books, topics, and persons by their id attributes.
type Catalog struct {
	// BookIDs are the id attribute values of all book elements.
	BookIDs []string
	// TopicIDs are the id attribute values of all topic elements.
	TopicIDs []string
	// PersonIDs are the id attribute values of all person elements.
	PersonIDs []string
	// Books is the total number of books.
	Books int
}

// GenerateBib builds the bib document on the given backend and returns it
// with the catalog of jump targets.
func GenerateBib(backend pagestore.Backend, cfg BibConfig) (*storage.Document, *Catalog, error) {
	doc, err := storage.Create(backend, "bib", storage.Options{
		Dist:               cfg.Dist,
		BufferFrames:       cfg.BufferFrames,
		BufferShards:       cfg.BufferShards,
		FlusherInterval:    cfg.FlusherInterval,
		CheckpointInterval: cfg.CheckpointInterval,
		Metrics:            cfg.Metrics,
	})
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := &Catalog{}
	b := doc.NewBuilder()

	b.StartElement("persons")
	for i := 0; i < cfg.Persons; i++ {
		pid := fmt.Sprintf("p%d", i)
		cat.PersonIDs = append(cat.PersonIDs, pid)
		b.StartElement("person").Attribute("id", pid).
			StartElement("name").
			Element("first", firstNames[i%len(firstNames)]).
			Element("last", lastNames[(i/len(firstNames))%len(lastNames)]).
			EndElement().
			Element("addr", fmt.Sprintf("%d Library Lane", i)).
			Element("phone", fmt.Sprintf("+49-631-%05d", i)).
			EndElement()
	}
	b.EndElement()

	b.StartElement("topics")
	for t := 0; t < cfg.Topics; t++ {
		tid := fmt.Sprintf("t%d", t)
		cat.TopicIDs = append(cat.TopicIDs, tid)
		b.StartElement("topic").Attribute("id", tid)
		for k := 0; k < cfg.BooksPerTopic; k++ {
			bid := fmt.Sprintf("b%d-%d", t, k)
			cat.BookIDs = append(cat.BookIDs, bid)
			year := 1970 + rng.Intn(36)
			b.StartElement("book").Attribute("id", bid).Attribute("year", fmt.Sprintf("%d", year)).
				Element("title", fmt.Sprintf("%s of %s", titleNouns[rng.Intn(len(titleNouns))], titleTopics[rng.Intn(len(titleTopics))])).
				StartElement("author").
				Element("first", firstNames[rng.Intn(cfg.Authors)%len(firstNames)]).
				Element("last", lastNames[rng.Intn(cfg.Authors)%len(lastNames)]).
				EndElement().
				Element("price", fmt.Sprintf("%d.%02d", 10+rng.Intn(90), rng.Intn(100)))

			b.StartElement("chapters")
			chapters := cfg.ChaptersMin + rng.Intn(cfg.ChaptersMax-cfg.ChaptersMin+1)
			for ch := 0; ch < chapters; ch++ {
				b.StartElement("chapter").
					Element("title", fmt.Sprintf("Chapter %d", ch+1)).
					Element("summary", fmt.Sprintf("Summary of chapter %d in book %s.", ch+1, bid)).
					EndElement()
			}
			b.EndElement()

			b.StartElement("history")
			lends := cfg.LendsMin + rng.Intn(cfg.LendsMax-cfg.LendsMin+1)
			for l := 0; l < lends; l++ {
				b.StartElement("lend").
					Attribute("person", fmt.Sprintf("p%d", rng.Intn(max(cfg.Persons, 1)))).
					Attribute("return", fmt.Sprintf("2005-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))).
					EndElement()
			}
			b.EndElement()

			b.EndElement() // book
		}
		b.EndElement() // topic
	}
	b.EndElement() // topics

	if b.Err() != nil {
		doc.Close()
		return nil, nil, b.Err()
	}
	cat.Books = len(cat.BookIDs)
	return doc, cat, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var firstNames = []string{
	"Ada", "Edgar", "Grace", "Donald", "Barbara", "Jim", "Theo", "Michael",
	"Konstantin", "Hedy", "Alan", "Leslie", "Margaret", "Tony", "Pat", "Niklaus",
}

var lastNames = []string{
	"Lovelace", "Codd", "Hopper", "Knuth", "Liskov", "Gray", "Haerder",
	"Haustein", "Luttenberger", "Lamarr", "Turing", "Lamport", "Hamilton",
	"Hoare", "Selinger", "Wirth",
}

var titleNouns = []string{
	"Foundations", "Principles", "Art", "Theory", "Practice", "Elements",
	"Fundamentals", "Handbook", "Anatomy", "Design",
}

var titleTopics = []string{
	"Transaction Processing", "XML Databases", "Concurrency Control",
	"Query Optimization", "Storage Systems", "Index Structures",
	"Lock Protocols", "Tree Labeling", "Recovery", "Benchmarking",
}
