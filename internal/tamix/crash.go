package tamix

// Crash-burst harness for the WAL/recovery crash matrix: a short, violent
// TaMix-style burst of marker transactions that ends in a hard stop (the
// log trips a scheduled crash, or a torn page write poisons a write-back),
// leaving behind exactly what a power failure would — a page backend with
// an arbitrary subset of write-backs applied and a log with a possibly
// torn tail.
//
// Every transaction manipulates one uniquely-identified marker element, and
// the harness records what each worker KNOWS: states whose commit returned
// success (durability is owed unconditionally) and in-flight states whose
// commit outcome the crash swallowed (owed if and only if recovery finds
// the commit record). AuditRecovered then checks the recovered document
// against that knowledge in both directions — expected markers present
// with the right name and value, and no marker present that isn't
// accounted for (no resurrected rollbacks, no lost commits).

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/wal"
)

// CrashConfig describes one crash burst.
type CrashConfig struct {
	// Protocol is the lock protocol (default taDOM3+).
	Protocol string
	// Workers is the number of concurrent marker writers (default 3).
	Workers int
	// OpsPerWorker bounds marker transactions per worker (default 40); the
	// burst usually ends earlier, at the crash.
	OpsPerWorker int
	// CrashAfterAppends makes the LOG crash on its Nth append (0 = none).
	CrashAfterAppends uint64
	// TornWriteAt schedules a permanent, torn page-write fault on the Nth
	// write-back (0 = none); the observing worker then hard-stops the log.
	TornWriteAt uint64
	// SegmentSize is the WAL segment size (default 32 KiB, small enough
	// that bursts rotate segments).
	SegmentSize int
	// CheckpointEvery, when > 0, makes each worker take a fuzzy checkpoint
	// every Nth operation, so bursts crash with checkpoints (and possibly
	// truncated segments) on record.
	CheckpointEvery int
	// Retain caps how many newest segments checkpoint GC keeps
	// (wal.DefaultRetain when 0).
	Retain int
	// CheckpointCrashAt crashes the log during the Nth checkpoint, at the
	// phase given by CheckpointCrashPhase (see wal.Config).
	CheckpointCrashAt    uint64
	CheckpointCrashPhase int
	// LockTimeout bounds lock waits (default 25 ms).
	LockTimeout time.Duration
	// Bib sizes the base document (default Scaled(0.02) with a small
	// buffer pool, so write-backs happen during the burst).
	Bib BibConfig
	// Seed drives all randomness.
	Seed int64
}

// MarkerState is the expected post-recovery state of one marker element.
type MarkerState struct {
	// Name is the element name (markers toggle crashmark <-> cmark).
	Name string
	// Value is the "v" attribute's character data.
	Value string
	// Deleted markers must be absent.
	Deleted bool
}

// CrashOutcome is the persistent residue of a burst plus the workers'
// knowledge, everything needed to recover and audit.
type CrashOutcome struct {
	// Backend is the page store as the crash left it (fault injection
	// disarmed).
	Backend pagestore.Backend
	// Segments is the log's segment store, already power-failed (unsynced
	// bytes dropped).
	Segments *wal.MemSegmentStore
	// Opts reopens the document.
	Opts storage.Options

	// Committed holds the latest marker states whose commit returned
	// success.
	Committed map[string]MarkerState
	// Pending holds, per in-flight transaction ID, the marker states that
	// transaction was committing when the crash swallowed the outcome.
	Pending map[uint64]map[string]MarkerState

	// CommittedTxns and AbortedTxns count definite outcomes; PendingTxns
	// counts crash-swallowed ones.
	CommittedTxns, AbortedTxns, PendingTxns int
	// LogStats is the log's state at the hard stop.
	LogStats wal.Stats
}

// Expected folds the recovery report's commit verdicts over the pending
// transactions: a pending state is owed exactly when its commit record
// survived.
func (o *CrashOutcome) Expected(rep *storage.RecoveryReport) map[string]MarkerState {
	exp := make(map[string]MarkerState, len(o.Committed))
	for id, st := range o.Committed {
		exp[id] = st
	}
	for txn, states := range o.Pending {
		if !rep.Committed[txn] {
			continue
		}
		for id, st := range states {
			exp[id] = st
		}
	}
	return exp
}

type crashPlan struct {
	kind   int // 0 create, 1 overwrite, 2 rename, 3 delete
	marker string
	next   MarkerState
}

type crashWorker struct {
	id   int
	rng  *rand.Rand
	mgr  *node.Manager
	log  *wal.Log
	doc  *storage.Document
	cfg  *CrashConfig
	root splid.ID

	committed map[string]MarkerState
	live      []string // own non-deleted committed markers
	pending   map[uint64]map[string]MarkerState
	commits   int
	aborts    int
	seq       int
}

func (w *crashWorker) plan() crashPlan {
	w.seq++
	if len(w.live) == 0 || w.rng.Float64() < 0.4 {
		id := fmt.Sprintf("cm-%d-%d", w.id, w.seq)
		return crashPlan{kind: 0, marker: id,
			next: MarkerState{Name: "crashmark", Value: fmt.Sprintf("v%d", w.seq)}}
	}
	m := w.live[w.rng.Intn(len(w.live))]
	st := w.committed[m]
	switch r := w.rng.Float64(); {
	case r < 0.5:
		st.Value = fmt.Sprintf("v%d", w.seq)
		return crashPlan{kind: 1, marker: m, next: st}
	case r < 0.75:
		if st.Name == "crashmark" {
			st.Name = "cmark"
		} else {
			st.Name = "crashmark"
		}
		return crashPlan{kind: 2, marker: m, next: st}
	default:
		return crashPlan{kind: 3, marker: m, next: MarkerState{Deleted: true}}
	}
}

func (w *crashWorker) exec(t *tx.Txn, p crashPlan) error {
	if p.kind == 0 {
		el, err := w.mgr.AppendElement(t, w.root, "crashmark")
		if err != nil {
			return err
		}
		if err := w.mgr.SetAttribute(t, el.ID, "id", []byte(p.marker)); err != nil {
			return err
		}
		return w.mgr.SetAttribute(t, el.ID, "v", []byte(p.next.Value))
	}
	n, err := w.mgr.JumpToID(t, p.marker)
	if err != nil {
		return err
	}
	switch p.kind {
	case 1:
		return w.mgr.SetAttribute(t, n.ID, "v", []byte(p.next.Value))
	case 2:
		return w.mgr.Rename(t, n.ID, p.next.Name)
	default:
		return w.mgr.DeleteSubtree(t, n.ID)
	}
}

// noteCommitted updates the worker's knowledge after a successful commit.
func (w *crashWorker) noteCommitted(p crashPlan) {
	w.commits++
	w.committed[p.marker] = p.next
	if p.next.Deleted {
		for i, m := range w.live {
			if m == p.marker {
				w.live = append(w.live[:i], w.live[i+1:]...)
				break
			}
		}
	} else if p.kind == 0 {
		w.live = append(w.live, p.marker)
	}
}

// crashed reports whether err means the log (or a poisoned write-back)
// ended the burst.
func crashed(err error) bool {
	return errors.Is(err, wal.ErrCrashed) || errors.Is(err, pagestore.ErrInjectedFault)
}

func (w *crashWorker) run() {
	for i := 0; i < w.cfg.OpsPerWorker; i++ {
		if w.log.Crashed() {
			return
		}
		if w.cfg.CheckpointEvery > 0 && i > 0 && i%w.cfg.CheckpointEvery == 0 {
			// Fuzzy checkpoint mid-burst; other workers keep mutating. A
			// scheduled checkpoint crash surfaces here as ErrCrashed.
			if _, err := w.doc.Checkpoint(); err != nil && crashed(err) {
				return
			}
		}
		p := w.plan()
		t := w.mgr.Begin(tx.LevelRepeatable)
		w.pending[t.ID()] = map[string]MarkerState{p.marker: p.next}
		err := w.exec(t, p)
		if err == nil {
			if err = t.Commit(); err == nil {
				delete(w.pending, t.ID())
				w.noteCommitted(p)
				continue
			}
			if crashed(err) {
				// Outcome unknown: the commit record may or may not have
				// reached the durable log. Leave it pending and stop.
				w.log.CrashNow()
				_ = t.Abort()
				return
			}
		}
		// Operation failed (lock timeout, deadlock victim, crash): roll
		// back. Runtime rollback — or recovery's, if the log is gone —
		// restores the prior committed state either way.
		_ = t.Abort()
		delete(w.pending, t.ID())
		w.aborts++
		if crashed(err) {
			w.log.CrashNow()
			return
		}
	}
}

// CrashBurst runs marker transactions until the configured crash (or the
// op budget) stops the burst, then power-fails the log's segment store and
// returns the residue. The document's buffer pool is deliberately
// abandoned un-flushed.
func CrashBurst(cfg CrashConfig) (*CrashOutcome, error) {
	if cfg.Protocol == "" {
		cfg.Protocol = "taDOM3+"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 40
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = 32 << 10
	}
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 25 * time.Millisecond
	}
	if cfg.Bib.Persons == 0 {
		cfg.Bib = Scaled(0.02)
		cfg.Bib.BufferFrames = 48 // force write-backs during the burst
	}
	cfg.Bib.Seed = cfg.Seed

	p, err := protocol.Parse(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	var backend pagestore.Backend = pagestore.NewMemBackend()
	var fb *pagestore.FaultBackend
	if cfg.TornWriteAt > 0 {
		fb = pagestore.NewFaultBackend(backend, pagestore.FaultConfig{
			Seed: cfg.Seed,
			Schedule: []pagestore.ScheduledFault{
				{Op: pagestore.OpWrite, N: cfg.TornWriteAt, Class: pagestore.ClassPermanent, Torn: true},
			},
		})
		fb.Disarm() // generation and baseline flush run fault-free
		backend = fb
	}
	doc, _, err := GenerateBib(backend, cfg.Bib)
	if err != nil {
		return nil, err
	}
	// No doc.Close(): the buffer pool dies with the "process".

	segs := wal.NewMemSegmentStore()
	log, err := wal.Open(segs, wal.Config{
		SegmentSize:          cfg.SegmentSize,
		CrashAfterAppends:    cfg.CrashAfterAppends,
		Retain:               cfg.Retain,
		CrashAtCheckpoint:    cfg.CheckpointCrashAt,
		CheckpointCrashPhase: cfg.CheckpointCrashPhase,
	})
	if err != nil {
		return nil, err
	}
	if err := doc.AttachWAL(log); err != nil {
		return nil, err
	}
	mgr := node.New(doc, p, node.Options{Depth: -1, LockTimeout: cfg.LockTimeout})
	defer mgr.Close()
	mgr.TxManager().SetWAL(log)
	if fb != nil {
		fb.Arm()
	}

	workers := make([]*crashWorker, cfg.Workers)
	var wg sync.WaitGroup
	for i := range workers {
		workers[i] = &crashWorker{
			id:        i,
			rng:       rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			mgr:       mgr,
			log:       log,
			doc:       doc,
			cfg:       &cfg,
			root:      doc.Root(),
			committed: make(map[string]MarkerState),
			pending:   make(map[uint64]map[string]MarkerState),
		}
		wg.Add(1)
		go func(w *crashWorker) {
			defer wg.Done()
			w.run()
		}(workers[i])
	}
	wg.Wait()

	// Hard stop: even a burst that exhausted its op budget ends in a
	// simulated power failure, not a clean shutdown.
	log.CrashNow()
	if fb != nil {
		fb.Disarm()
	}
	out := &CrashOutcome{
		Backend:   backend,
		Segments:  segs,
		Opts:      storage.Options{BufferFrames: cfg.Bib.BufferFrames},
		Committed: make(map[string]MarkerState),
		Pending:   make(map[uint64]map[string]MarkerState),
		LogStats:  log.Stats(),
	}
	for _, w := range workers {
		for id, st := range w.committed {
			out.Committed[id] = st
		}
		for txn, states := range w.pending {
			out.Pending[txn] = states
		}
		out.CommittedTxns += w.commits
		out.AbortedTxns += w.aborts
	}
	out.PendingTxns = len(out.Pending)
	segs.Crash()
	return out, nil
}

// AuditRecovered checks a recovered document against the folded
// expectations: every owed marker present with the right name and value,
// every deleted or rolled-back marker absent, no stray markers, and the
// document's physical invariants intact.
func AuditRecovered(d *storage.Document, exp map[string]MarkerState) error {
	var errs []error
	for id, st := range exp {
		el, err := d.ElementByID([]byte(id))
		if st.Deleted {
			if err == nil {
				errs = append(errs, fmt.Errorf("deleted marker %s resurrected", id))
			} else if !errors.Is(err, storage.ErrNodeNotFound) {
				errs = append(errs, err)
			}
			continue
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("marker %s: %w", id, err))
			continue
		}
		n, err := d.GetNode(el)
		if err != nil {
			errs = append(errs, fmt.Errorf("marker %s: %w", id, err))
			continue
		}
		if name := d.Vocabulary().Name(n.Name); name != st.Name {
			errs = append(errs, fmt.Errorf("marker %s named %q, want %q", id, name, st.Name))
		}
		a, err := d.AttributeByName(el, "v")
		if err != nil || a.ID.IsNull() {
			errs = append(errs, fmt.Errorf("marker %s lost its value attribute (%v)", id, err))
			continue
		}
		v, err := d.Value(a.ID)
		if err != nil {
			errs = append(errs, fmt.Errorf("marker %s value: %w", id, err))
			continue
		}
		if string(v) != st.Value {
			errs = append(errs, fmt.Errorf("marker %s = %q, want %q", id, v, st.Value))
		}
	}
	// Reverse direction: every marker element in the document must be owed.
	for _, name := range []string{"crashmark", "cmark"} {
		var scanErr error
		err := d.ElementsByName(name, func(el splid.ID) bool {
			a, err := d.AttributeByName(el, "id")
			if err != nil || a.ID.IsNull() {
				scanErr = fmt.Errorf("%s element %v has no id attribute (%v)", name, el, err)
				return false
			}
			v, err := d.Value(a.ID)
			if err != nil {
				scanErr = err
				return false
			}
			st, ok := exp[string(v)]
			if !ok || st.Deleted {
				scanErr = fmt.Errorf("stray marker %q (%s at %v): not owed to any committed transaction", v, name, el)
				return false
			}
			return true
		})
		if err != nil {
			errs = append(errs, err)
		}
		if scanErr != nil {
			errs = append(errs, scanErr)
		}
	}
	if err := d.Verify(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
