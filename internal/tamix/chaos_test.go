package tamix

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pagestore"
	"repro/internal/tx"
)

// chaosConfig is a high-conflict, fault-injected CLUSTER1 variant: a small
// document, a write-heavy mix, a short lock timeout, and a page buffer too
// small to hold the working set, so the run exercises deadlock aborts, lock
// timeouts, transaction restarts, and storage-fault retries all at once.
func chaosConfig(seed int64) Config {
	bib := Scaled(0.05) // 5 topics, 100 books: ~80 pages
	// Far below the ~80-page working set (forces backend I/O all run) yet
	// comfortably above the 12 workers' worst-case concurrent pins.
	bib.BufferFrames = 56
	return Config{
		Protocol:  "taDOM3+",
		Isolation: tx.LevelRepeatable,
		Depth:     -1,
		Clients:   2,
		Mix: map[TxType]int{
			TAqueryBook:     1,
			TAchapter:       1,
			TArenameTopic:   2,
			TAlendAndReturn: 2,
		},
		Duration:           700 * time.Millisecond,
		WaitAfterCommit:    time.Millisecond,
		WaitAfterOperation: 500 * time.Microsecond,
		MaxStartDelay:      5 * time.Millisecond,
		LockTimeout:        30 * time.Millisecond,
		RestartBackoff:     time.Millisecond,
		RestartMaxBackoff:  8 * time.Millisecond,
		Bib:                bib,
		Seed:               seed,
	}
}

// TestChaosRestartLoopUnderFaults is the acceptance test of the recovery
// layer: a seeded FaultBackend under a high-conflict mix must finish
// without panic, pass Verify, leak no locks (Run audits both), and show the
// restart and retry machinery actually working.
func TestChaosRestartLoopUnderFaults(t *testing.T) {
	cfg := chaosConfig(7)
	cfg.Faults = &pagestore.FaultConfig{
		Seed:       7,
		ReadProb:   0.05,
		WriteProb:  0.05,
		AllocProb:  0.02,
		TornWrites: true, // transient torn writes must be healed by retry
	}
	cfg.Retry = &pagestore.RetryPolicy{
		MaxRetries:  8,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  500 * time.Microsecond,
		Seed:        7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if res.Committed == 0 {
		t.Error("no transactions committed")
	}
	if res.Aborted == 0 {
		t.Error("high-conflict run produced no aborts; conflict knobs too weak")
	}
	if res.Restarts == 0 {
		t.Error("restart counter is zero; aborted transactions were not retried")
	}
	if res.RestartWait == 0 {
		t.Error("restart backoff time is zero")
	}
	if res.FaultsInjected == 0 {
		t.Error("no faults injected; buffer too large or probabilities too low")
	}
	if res.BufferRetries == 0 {
		t.Error("no buffer retries; transient faults were not retried")
	}
	if res.BufferRetryFailures != 0 {
		t.Errorf("%d transient faults outlived the retry budget", res.BufferRetryFailures)
	}
	restarts := 0
	for _, typ := range TxTypes {
		restarts += res.PerType[typ].Restarts
	}
	if restarts != res.Restarts {
		t.Errorf("per-type restarts sum to %d, total says %d", restarts, res.Restarts)
	}
	t.Logf("chaos: committed=%d aborted=%d restarts=%d dropped=%d faults=%d torn=%d retries=%d",
		res.Committed, res.Aborted, res.Restarts, res.Dropped,
		res.FaultsInjected, res.TornWrites, res.BufferRetries)
}

// TestChaosSnapshotContestantVersionAudit runs the high-conflict mix under
// the MVCC snapshot contestant: read-only slots pin lock-free snapshots
// while the write mix churns pages, splits, and deadlock-restarts around
// them. Run's post-run audits make this loud on regression: leaked snapshot
// registrations or page versions retained below the watermark fail the run.
func TestChaosSnapshotContestantVersionAudit(t *testing.T) {
	cfg := chaosConfig(17)
	cfg.Protocol = "snapshot"
	cfg.Faults = nil // faults exercise the retry path; here the target is the version chains
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("snapshot chaos run failed: %v", err)
	}
	if res.Committed == 0 {
		t.Error("no transactions committed")
	}
	if res.PerType[TAqueryBook].Committed == 0 {
		t.Error("no read-only (snapshot) transactions committed")
	}
	writes := res.Committed - res.PerType[TAqueryBook].Committed
	if writes == 0 {
		t.Error("no writers committed; the version chains were never exercised")
	}
	t.Logf("snapshot chaos: committed=%d (%d snapshot reads) aborted=%d restarts=%d",
		res.Committed, res.PerType[TAqueryBook].Committed, res.Aborted, res.Restarts)
}

// TestChaosPermanentFaultFailsGracefully injects an unretryable fault and
// demands a classified error from Run — not a panic, not a corrupted
// result.
func TestChaosPermanentFaultFailsGracefully(t *testing.T) {
	cfg := chaosConfig(11)
	cfg.Faults = &pagestore.FaultConfig{
		Seed: 11,
		// The 20th armed read fails permanently; everything else is clean.
		Schedule: []pagestore.ScheduledFault{
			{Op: pagestore.OpRead, N: 20, Class: pagestore.ClassPermanent},
		},
	}
	res, err := Run(cfg)
	if err == nil {
		t.Fatalf("run swallowed a permanent fault: %+v", res)
	}
	if !pagestore.IsPermanent(err) {
		t.Errorf("error not classified permanent: %v", err)
	}
	if !errors.Is(err, pagestore.ErrInjectedFault) {
		t.Errorf("error chain lost the injected fault: %v", err)
	}
}

// TestChaosRestartCapDropsTransaction pins the restart cap at zero and
// checks that victims are dropped instead of retried — the pre-recovery
// behavior, now as an explicit, observable mode.
func TestChaosRestartCapDropsTransaction(t *testing.T) {
	cfg := chaosConfig(13)
	cfg.MaxRestarts = -1 // no restarts
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if res.Restarts != 0 {
		t.Errorf("restarts disabled but %d recorded", res.Restarts)
	}
	if res.Aborted == 0 {
		t.Skip("no conflicts this run; nothing to drop")
	}
	if res.Dropped != res.Aborted {
		t.Errorf("with restarts off every abort is a drop: aborted=%d dropped=%d", res.Aborted, res.Dropped)
	}
}
