package tamix

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/splid"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

// Txn is the transaction handle the workload drives. *tx.Txn satisfies it
// directly for in-process runs; the xtcd client's Txn satisfies it for
// remote runs.
type Txn interface {
	ID() uint64
	Commit() error
	Abort() error
}

// Engine is the operation surface the TaMix transaction bodies run against —
// the subset of the node manager the workload uses, abstracted so the same
// bodies drive either an in-process engine or an xtcd server over the wire.
// Error contracts carry over: deadlock-victim and lock-timeout failures
// satisfy node.IsAbortWorthy, vanished targets satisfy
// errors.Is(storage.ErrNodeNotFound).
type Engine interface {
	// Begin starts a transaction (the isolation level is fixed per engine).
	// readOnly declares that the transaction body performs no updates;
	// engines with snapshot reads enabled downgrade such transactions to
	// tx.LevelSnapshot, all others ignore the flag.
	Begin(readOnly bool) (Txn, error)
	JumpToID(t Txn, value string) (xmlmodel.Node, error)
	FirstChild(t Txn, id splid.ID) (xmlmodel.Node, error)
	LastChild(t Txn, id splid.ID) (xmlmodel.Node, error)
	NextSibling(t Txn, id splid.ID) (xmlmodel.Node, error)
	GetChildren(t Txn, id splid.ID) ([]xmlmodel.Node, error)
	ReadFragment(t Txn, id splid.ID, jump bool) ([]xmlmodel.Node, error)
	UpdateLastChildFragment(t Txn, id splid.ID) (xmlmodel.Node, []xmlmodel.Node, error)
	SetValue(t Txn, id splid.ID, value []byte) error
	Rename(t Txn, id splid.ID, newName string) error
	AppendElement(t Txn, parent splid.ID, name string) (xmlmodel.Node, error)
	SetAttribute(t Txn, el splid.ID, name string, value []byte) error
	DeleteSubtree(t Txn, id splid.ID) error
	// LookupName resolves a vocabulary name to its surrogate.
	LookupName(name string) (xmlmodel.Sur, bool)
}

// localEngine adapts a node.Manager (plus a fixed isolation level) to
// Engine.
type localEngine struct {
	m   *node.Manager
	iso tx.Level
	// snapReads routes read-only transactions to tx.LevelSnapshot (set when
	// the manager has EnableSnapshotReads on — the "snapshot" contestant).
	snapReads bool
}

// newLocalEngine wraps an in-process node manager.
func newLocalEngine(m *node.Manager, iso tx.Level) *localEngine {
	return &localEngine{m: m, iso: iso}
}

// localTxn unwraps the concrete transaction; mixing engines is a programming
// error worth failing loudly on.
func localTxn(t Txn) *tx.Txn {
	txn, ok := t.(*tx.Txn)
	if !ok {
		panic(fmt.Sprintf("tamix: local engine got foreign transaction %T", t))
	}
	return txn
}

func (e *localEngine) Begin(readOnly bool) (Txn, error) {
	iso := e.iso
	if readOnly && e.snapReads {
		iso = tx.LevelSnapshot
	}
	return e.m.Begin(iso), nil
}

func (e *localEngine) JumpToID(t Txn, value string) (xmlmodel.Node, error) {
	return e.m.JumpToID(localTxn(t), value)
}

func (e *localEngine) FirstChild(t Txn, id splid.ID) (xmlmodel.Node, error) {
	return e.m.FirstChild(localTxn(t), id)
}

func (e *localEngine) LastChild(t Txn, id splid.ID) (xmlmodel.Node, error) {
	return e.m.LastChild(localTxn(t), id)
}

func (e *localEngine) NextSibling(t Txn, id splid.ID) (xmlmodel.Node, error) {
	return e.m.NextSibling(localTxn(t), id)
}

func (e *localEngine) GetChildren(t Txn, id splid.ID) ([]xmlmodel.Node, error) {
	return e.m.GetChildren(localTxn(t), id)
}

func (e *localEngine) ReadFragment(t Txn, id splid.ID, jump bool) ([]xmlmodel.Node, error) {
	return e.m.ReadFragment(localTxn(t), id, jump)
}

func (e *localEngine) UpdateLastChildFragment(t Txn, id splid.ID) (xmlmodel.Node, []xmlmodel.Node, error) {
	return e.m.UpdateLastChildFragment(localTxn(t), id)
}

func (e *localEngine) SetValue(t Txn, id splid.ID, value []byte) error {
	return e.m.SetValue(localTxn(t), id, value)
}

func (e *localEngine) Rename(t Txn, id splid.ID, newName string) error {
	return e.m.Rename(localTxn(t), id, newName)
}

func (e *localEngine) AppendElement(t Txn, parent splid.ID, name string) (xmlmodel.Node, error) {
	return e.m.AppendElement(localTxn(t), parent, name)
}

func (e *localEngine) SetAttribute(t Txn, el splid.ID, name string, value []byte) error {
	return e.m.SetAttribute(localTxn(t), el, name, value)
}

func (e *localEngine) DeleteSubtree(t Txn, id splid.ID) error {
	return e.m.DeleteSubtree(localTxn(t), id)
}

func (e *localEngine) LookupName(name string) (xmlmodel.Sur, bool) {
	return e.m.Document().Vocabulary().Lookup(name)
}
