// Package core is the public API of the library: an embedded XML database
// engine in the spirit of XTC (the XML Transaction Coordinator), offering
// transactional DOM operations on taDOM-stored XML documents under any of
// the 11 lock protocols compared in "Contest of XML Lock Protocols"
// (VLDB 2006).
//
// A minimal session:
//
//	eng, err := core.Create(core.Config{})           // in-memory, taDOM3+
//	err = eng.Load(strings.NewReader("<bib>...</bib>"))
//	err = eng.Exec(core.Repeatable, func(s *core.Session) error {
//	    book, err := s.JumpToID("b42")
//	    if err != nil { return err }
//	    return s.SetAttribute(book.ID, "year", []byte("2006"))
//	})
//
// Exec retries automatically when the transaction is chosen as a deadlock
// victim, mirroring the restart behavior of the paper's TaMix clients.
package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/lock"
	"repro/internal/node"
	"repro/internal/pagestore"
	"repro/internal/protocol"
	"repro/internal/splid"
	"repro/internal/storage"
	"repro/internal/tx"
	"repro/internal/xmlmodel"
)

// Re-exported isolation levels (Section 4.3 of the paper).
const (
	// None acquires no locks at all.
	None = tx.LevelNone
	// Uncommitted takes long write locks but no read locks.
	Uncommitted = tx.LevelUncommitted
	// Committed takes short read locks and long write locks.
	Committed = tx.LevelCommitted
	// Repeatable takes long read and write locks — the paper's comparison
	// level.
	Repeatable = tx.LevelRepeatable
)

// Node is a document node as returned by Session operations.
type Node = xmlmodel.Node

// ID is a stable path labeling identifier.
type ID = splid.ID

// Config configures an Engine.
type Config struct {
	// Path stores the document in a file; empty means in-memory.
	Path string
	// RootName names the document root element (default "doc").
	RootName string
	// Protocol selects the lock protocol by its paper name (default
	// "taDOM3+", the contest winner). See Protocols() for the full list.
	Protocol string
	// LockDepth is the lock-depth parameter (default 7; negative =
	// unlimited, 0 = document locks).
	LockDepth *int
	// LockTimeout bounds lock waits (default 10s).
	LockTimeout time.Duration
	// Dist is the SPLID labeling gap for new documents.
	Dist uint32
	// BufferFrames sizes the page buffer.
	BufferFrames int
	// MaxRetries bounds Exec's deadlock-retry loop (default 10).
	MaxRetries int
}

func (c *Config) fill() {
	if c.RootName == "" {
		c.RootName = "doc"
	}
	if c.Protocol == "" {
		c.Protocol = "taDOM3+"
	}
	if c.LockDepth == nil {
		d := 7
		c.LockDepth = &d
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 10 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
}

// Protocols returns the names of all available lock protocols in the
// paper's presentation order.
func Protocols() []string { return protocol.Names() }

// Engine is an embedded XML database instance: one document, one lock
// protocol, arbitrarily many concurrent transactions.
type Engine struct {
	cfg Config
	doc *storage.Document
	mgr *node.Manager
}

// Create builds a new engine with an empty document.
func Create(cfg Config) (*Engine, error) {
	cfg.fill()
	backend, err := makeBackend(cfg.Path)
	if err != nil {
		return nil, err
	}
	doc, err := storage.Create(backend, cfg.RootName, storage.Options{
		Dist:         cfg.Dist,
		BufferFrames: cfg.BufferFrames,
	})
	if err != nil {
		return nil, err
	}
	return wrap(cfg, doc)
}

// OpenFile reopens an engine over a document previously created with a
// file-backed Config.Path.
func OpenFile(cfg Config) (*Engine, error) {
	cfg.fill()
	if cfg.Path == "" {
		return nil, errors.New("core: OpenFile requires Config.Path")
	}
	backend, err := pagestore.OpenFile(cfg.Path)
	if err != nil {
		return nil, err
	}
	doc, err := storage.Open(backend, storage.Options{BufferFrames: cfg.BufferFrames})
	if err != nil {
		return nil, err
	}
	return wrap(cfg, doc)
}

func makeBackend(path string) (pagestore.Backend, error) {
	if path == "" {
		return pagestore.NewMemBackend(), nil
	}
	return pagestore.OpenFile(path)
}

// Wrap builds an engine around an already-constructed document (for
// example, one produced by the TaMix bib generator).
func Wrap(doc *storage.Document, cfg Config) (*Engine, error) {
	cfg.fill()
	return wrap(cfg, doc)
}

func wrap(cfg Config, doc *storage.Document) (*Engine, error) {
	p, err := protocol.ByName(cfg.Protocol)
	if err != nil {
		doc.Close()
		return nil, err
	}
	mgr := node.New(doc, p, node.Options{
		Depth:       *cfg.LockDepth,
		LockTimeout: cfg.LockTimeout,
	})
	return &Engine{cfg: cfg, doc: doc, mgr: mgr}, nil
}

// Close flushes and closes the engine.
func (e *Engine) Close() error { return e.doc.Close() }

// Load bulk-imports XML below the document root. It bypasses locking and
// must run before concurrent transactions start.
func (e *Engine) Load(r io.Reader) error { return e.doc.ImportXML(r) }

// ExportXML writes the subtree under id (or the whole document for the root
// ID) as indented XML. It reads the store directly, without locks; call it
// on a quiesced engine or accept fuzzy reads.
func (e *Engine) ExportXML(w io.Writer, id ID) error { return e.doc.ExportXML(w, id) }

// Root returns the document root ID.
func (e *Engine) Root() ID { return e.doc.Root() }

// ProtocolName returns the active lock protocol.
func (e *Engine) ProtocolName() string { return e.mgr.Protocol().Name() }

// Manager exposes the node manager for advanced use (TaMix drives it
// directly).
func (e *Engine) Manager() *node.Manager { return e.mgr }

// Stats summarizes engine activity.
type Stats struct {
	// Committed and Aborted count finished transactions.
	Committed, Aborted uint64
	// Deadlocks counts detected lock cycles; ConversionDeadlocks of those
	// were caused by lock conversion (the paper's frequent class).
	Deadlocks, ConversionDeadlocks uint64
	// LockRequests counts all lock-manager requests.
	LockRequests uint64
	// BufferHits and BufferMisses describe page-buffer behavior.
	BufferHits, BufferMisses uint64
	// Nodes is the current document size in stored nodes.
	Nodes int
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	ts := e.mgr.TxManager().Stats()
	ls := e.mgr.LockManager().Stats()
	bs := e.doc.Store().Stats()
	return Stats{
		Committed:           ts.Committed,
		Aborted:             ts.Aborted,
		Deadlocks:           ls.Deadlocks,
		ConversionDeadlocks: ls.ConversionDeadlocks,
		LockRequests:        ls.Requests,
		BufferHits:          bs.Hits,
		BufferMisses:        bs.Misses,
		Nodes:               e.doc.Size(),
	}
}

// Session is one transaction's view of the document. All methods follow the
// DOM-style operations of the node manager and acquire locks through the
// engine's protocol.
type Session struct {
	eng *Engine
	txn *tx.Txn
}

// Begin starts an explicit transaction; prefer Exec for automatic
// deadlock-retry handling.
func (e *Engine) Begin(iso tx.Level) *Session {
	return &Session{eng: e, txn: e.mgr.Begin(iso)}
}

// Commit finishes the session's transaction.
func (s *Session) Commit() error { return s.txn.Commit() }

// Abort rolls the session's transaction back.
func (s *Session) Abort() error { return s.txn.Abort() }

// Exec runs fn in a transaction at the given isolation level, committing on
// nil and aborting on error. If the transaction is aborted as a deadlock
// victim (or times out on a lock), Exec retries it, up to
// Config.MaxRetries attempts.
func (e *Engine) Exec(iso tx.Level, fn func(*Session) error) error {
	var lastErr error
	for attempt := 0; attempt < e.cfg.MaxRetries; attempt++ {
		s := e.Begin(iso)
		err := fn(s)
		if err == nil {
			if err := s.Commit(); err == nil {
				return nil
			} else {
				lastErr = err
				continue
			}
		}
		s.Abort()
		if !node.IsAbortWorthy(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("core: transaction failed after %d attempts: %w", e.cfg.MaxRetries, lastErr)
}

// IsDeadlock reports whether err stems from a deadlock abort.
func IsDeadlock(err error) bool { return errors.Is(err, lock.ErrDeadlockVictim) }

// --- Session operations -----------------------------------------------------

// Root returns the document root ID.
func (s *Session) Root() ID { return s.eng.doc.Root() }

// GetNode reads a node by ID.
func (s *Session) GetNode(id ID) (Node, error) { return s.eng.mgr.GetNode(s.txn, id) }

// JumpToID jumps to the element carrying the given id attribute value.
func (s *Session) JumpToID(value string) (Node, error) { return s.eng.mgr.JumpToID(s.txn, value) }

// FirstChild navigates to the first child.
func (s *Session) FirstChild(id ID) (Node, error) { return s.eng.mgr.FirstChild(s.txn, id) }

// LastChild navigates to the last child.
func (s *Session) LastChild(id ID) (Node, error) { return s.eng.mgr.LastChild(s.txn, id) }

// NextSibling navigates to the following sibling.
func (s *Session) NextSibling(id ID) (Node, error) { return s.eng.mgr.NextSibling(s.txn, id) }

// PrevSibling navigates to the preceding sibling.
func (s *Session) PrevSibling(id ID) (Node, error) { return s.eng.mgr.PrevSibling(s.txn, id) }

// Parent navigates to the parent node.
func (s *Session) Parent(id ID) (Node, error) { return s.eng.mgr.Parent(s.txn, id) }

// Children returns all regular children (getChildNodes).
func (s *Session) Children(id ID) ([]Node, error) { return s.eng.mgr.GetChildren(s.txn, id) }

// Attributes returns the element's attribute nodes (getAttributes).
func (s *Session) Attributes(el ID) ([]Node, error) { return s.eng.mgr.GetAttributes(s.txn, el) }

// Value reads the character data of a text or attribute node.
func (s *Session) Value(id ID) ([]byte, error) { return s.eng.mgr.Value(s.txn, id) }

// AttributeValue reads one attribute by name (nil when absent).
func (s *Session) AttributeValue(el ID, name string) ([]byte, error) {
	return s.eng.mgr.AttributeValue(s.txn, el, name)
}

// ReadFragment reads the whole subtree under id in document order.
func (s *Session) ReadFragment(id ID) ([]Node, error) {
	return s.eng.mgr.ReadFragment(s.txn, id, false)
}

// Name resolves a node's name surrogate.
func (s *Session) Name(n Node) string { return s.eng.doc.Vocabulary().Name(n.Name) }

// SetValue overwrites a text or attribute node's character data.
func (s *Session) SetValue(id ID, value []byte) error {
	return s.eng.mgr.SetValue(s.txn, id, value)
}

// Rename renames an element (DOM level 3 renameNode).
func (s *Session) Rename(id ID, newName string) error {
	return s.eng.mgr.Rename(s.txn, id, newName)
}

// AppendElement inserts a new element as the last child of parent.
func (s *Session) AppendElement(parent ID, name string) (Node, error) {
	return s.eng.mgr.AppendElement(s.txn, parent, name)
}

// AppendText inserts a new text node as the last child of parent.
func (s *Session) AppendText(parent ID, value []byte) (Node, error) {
	return s.eng.mgr.AppendText(s.txn, parent, value)
}

// InsertElementBefore inserts a new element before an existing sibling.
func (s *Session) InsertElementBefore(parent, before ID, name string) (Node, error) {
	return s.eng.mgr.InsertElementBefore(s.txn, parent, before, name)
}

// SetAttribute creates or overwrites an attribute.
func (s *Session) SetAttribute(el ID, name string, value []byte) error {
	return s.eng.mgr.SetAttribute(s.txn, el, name, value)
}

// DeleteSubtree removes a node with its entire subtree.
func (s *Session) DeleteSubtree(id ID) error {
	return s.eng.mgr.DeleteSubtree(s.txn, id)
}
