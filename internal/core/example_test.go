package core_test

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
)

// ExampleEngine_Exec shows the basic transactional session: jump to an
// element by ID, read, update, and let Exec handle commit and deadlock
// retry.
func ExampleEngine_Exec() {
	eng, err := core.Create(core.Config{RootName: "bib"})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Load(strings.NewReader(
		`<book id="b1"><title>Contest of XML Lock Protocols</title></book>`)); err != nil {
		log.Fatal(err)
	}

	err = eng.Exec(core.Repeatable, func(s *core.Session) error {
		book, err := s.JumpToID("b1")
		if err != nil {
			return err
		}
		title, err := s.FirstChild(book.ID)
		if err != nil {
			return err
		}
		text, err := s.FirstChild(title.ID)
		if err != nil {
			return err
		}
		v, err := s.Value(text.ID)
		if err != nil {
			return err
		}
		fmt.Println(string(v))
		return s.SetAttribute(book.ID, "year", []byte("2006"))
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: Contest of XML Lock Protocols
}

// ExampleProtocols lists the paper's 11 contestants plus the MVCC snapshot
// contestant this repo adds.
func ExampleProtocols() {
	for _, name := range core.Protocols() {
		fmt.Println(name)
	}
	// Output:
	// Node2PL
	// NO2PL
	// OO2PL
	// Node2PLa
	// IRX
	// IRIX
	// URIX
	// taDOM2
	// taDOM2+
	// taDOM3
	// taDOM3+
	// snapshot
}
