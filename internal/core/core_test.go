package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const sampleXML = `
<topics>
  <topic id="t1">
    <book id="b1" year="2005">
      <title>Contest of XML Lock Protocols</title>
      <history><lend person="p1"/></history>
    </book>
    <book id="b2" year="2004">
      <title>Node Labeling Schemes</title>
      <history/>
    </book>
  </topic>
</topics>`

func newEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	cfg.RootName = "bib"
	eng, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if err := eng.Load(strings.NewReader(sampleXML)); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestCreateDefaults(t *testing.T) {
	eng := newEngine(t, Config{})
	if eng.ProtocolName() != "taDOM3+" {
		t.Errorf("default protocol = %s", eng.ProtocolName())
	}
	if len(Protocols()) != 12 {
		t.Errorf("Protocols() = %v", Protocols())
	}
}

func TestCreateRejectsUnknownProtocol(t *testing.T) {
	_, err := Create(Config{Protocol: "MySQL"})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestExecReadWrite(t *testing.T) {
	eng := newEngine(t, Config{})
	err := eng.Exec(Repeatable, func(s *Session) error {
		book, err := s.JumpToID("b1")
		if err != nil {
			return err
		}
		year, err := s.AttributeValue(book.ID, "year")
		if err != nil {
			return err
		}
		if string(year) != "2005" {
			return fmt.Errorf("year = %q", year)
		}
		title, err := s.FirstChild(book.ID)
		if err != nil {
			return err
		}
		txt, err := s.FirstChild(title.ID)
		if err != nil {
			return err
		}
		return s.SetValue(txt.ID, []byte("Contest (2nd ed.)"))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Visible in a fresh transaction.
	err = eng.Exec(Repeatable, func(s *Session) error {
		book, _ := s.JumpToID("b1")
		title, _ := s.FirstChild(book.ID)
		txt, _ := s.FirstChild(title.ID)
		v, err := s.Value(txt.ID)
		if err != nil {
			return err
		}
		if string(v) != "Contest (2nd ed.)" {
			return fmt.Errorf("value = %q", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Committed != 2 || st.Aborted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestExecAbortsOnError(t *testing.T) {
	eng := newEngine(t, Config{})
	boom := errors.New("boom")
	err := eng.Exec(Repeatable, func(s *Session) error {
		book, err := s.JumpToID("b1")
		if err != nil {
			return err
		}
		if err := s.SetAttribute(book.ID, "year", []byte("1999")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	eng.Exec(Repeatable, func(s *Session) error {
		book, _ := s.JumpToID("b1")
		v, _ := s.AttributeValue(book.ID, "year")
		if string(v) != "2005" {
			t.Errorf("year after rollback = %q", v)
		}
		return nil
	})
}

func TestExecRetriesDeadlocks(t *testing.T) {
	depth := 7
	eng := newEngine(t, Config{Protocol: "taDOM2", LockDepth: &depth, LockTimeout: time.Second})
	// Two transactions updating two books in opposite order; Exec's retry
	// must absorb the deadlock aborts.
	update := func(first, second string) error {
		return eng.Exec(Repeatable, func(s *Session) error {
			for _, id := range []string{first, second} {
				book, err := s.JumpToID(id)
				if err != nil {
					return err
				}
				if err := s.SetAttribute(book.ID, "year", []byte("2006")); err != nil {
					return err
				}
				time.Sleep(10 * time.Millisecond)
			}
			return nil
		})
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = update("b1", "b2") }()
	go func() { defer wg.Done(); errs[1] = update("b2", "b1") }()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs = %v / %v", errs[0], errs[1])
	}
}

func TestSessionStructuralOps(t *testing.T) {
	eng := newEngine(t, Config{})
	err := eng.Exec(Repeatable, func(s *Session) error {
		book, err := s.JumpToID("b2")
		if err != nil {
			return err
		}
		hist, err := s.LastChild(book.ID)
		if err != nil {
			return err
		}
		lend, err := s.AppendElement(hist.ID, "lend")
		if err != nil {
			return err
		}
		if err := s.SetAttribute(lend.ID, "person", []byte("p7")); err != nil {
			return err
		}
		isbn, err := s.InsertElementBefore(book.ID, hist.ID, "isbn")
		if err != nil {
			return err
		}
		if _, err := s.AppendText(isbn.ID, []byte("3-16-148410-0")); err != nil {
			return err
		}
		kids, err := s.Children(book.ID)
		if err != nil {
			return err
		}
		if len(kids) != 3 { // title, isbn, history
			return fmt.Errorf("children = %d", len(kids))
		}
		if s.Name(kids[1]) != "isbn" {
			return fmt.Errorf("middle child = %s", s.Name(kids[1]))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delete the other book entirely.
	err = eng.Exec(Repeatable, func(s *Session) error {
		book, err := s.JumpToID("b1")
		if err != nil {
			return err
		}
		return s.DeleteSubtree(book.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Exec(Repeatable, func(s *Session) error {
		if _, err := s.JumpToID("b1"); err == nil {
			return errors.New("b1 should be gone")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExportXML(t *testing.T) {
	eng := newEngine(t, Config{})
	var buf bytes.Buffer
	if err := eng.ExportXML(&buf, eng.Root()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"<bib>", `id="b1"`, "Contest of XML Lock Protocols"} {
		if !strings.Contains(out, frag) {
			t.Errorf("export missing %q", frag)
		}
	}
}

func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bib.xtc")
	cfg := Config{Path: path, RootName: "bib"}
	eng, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(strings.NewReader(sampleXML)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := OpenFile(Config{Path: path, Protocol: "URIX"})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if eng2.ProtocolName() != "URIX" {
		t.Errorf("protocol = %s", eng2.ProtocolName())
	}
	err = eng2.Exec(Repeatable, func(s *Session) error {
		book, err := s.JumpToID("b1")
		if err != nil {
			return err
		}
		frag, err := s.ReadFragment(book.ID)
		if err != nil {
			return err
		}
		if len(frag) < 5 {
			return fmt.Errorf("fragment = %d nodes", len(frag))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEveryProtocolThroughFacade(t *testing.T) {
	for _, name := range Protocols() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng := newEngine(t, Config{Protocol: name})
			err := eng.Exec(Repeatable, func(s *Session) error {
				book, err := s.JumpToID("b1")
				if err != nil {
					return err
				}
				_, err = s.ReadFragment(book.ID)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStatsCounters(t *testing.T) {
	eng := newEngine(t, Config{})
	before := eng.Stats()
	eng.Exec(Repeatable, func(s *Session) error {
		_, err := s.JumpToID("b1")
		return err
	})
	after := eng.Stats()
	if after.Committed != before.Committed+1 {
		t.Errorf("committed: %d -> %d", before.Committed, after.Committed)
	}
	if after.LockRequests <= before.LockRequests {
		t.Error("lock requests should grow")
	}
	if after.Nodes == 0 {
		t.Error("node count missing")
	}
}
