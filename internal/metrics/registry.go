package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter. Nil-safe: Add/Load on a nil
// counter are no-ops, so instruments handed out by a nil registry cost one
// branch.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (may go down). Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a name -> instrument map. Instruments are created on first
// request and shared on later ones, so independent subsystems can
// contribute to one namespace. All methods are safe for concurrent use and
// for a nil receiver (which hands out nil instruments — the disabled mode).
//
// Naming convention: dot-separated "subsystem.metric" (lock.wait,
// buffer.writeback, wal.force). The registry does not interpret names.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() uint64),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers a computed counter: fn is called at snapshot time and its
// value appears among the counters. Subsystems that already maintain their
// own atomic counters (lock.Stats, pagestore.Stats, wal.Stats) unify onto
// the registry this way without double-counting on their hot paths. A
// second registration under the same name replaces the first.
func (r *Registry) Func(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot captures every instrument into a plain value. Funcs are
// evaluated outside the registry mutex (they may take subsystem locks).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	funcs := make(map[string]func() uint64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.Unlock()
	for name, fn := range funcs {
		s.Counters[name] = fn()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry: plain maps, JSON-ready,
// and mergeable (figures average runs by merging their snapshots).
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Merge folds o into s: counters add, gauges take o's value (last write
// wins — they are instantaneous), histograms merge bucket-wise.
func (s *Snapshot) Merge(o *Snapshot) {
	if s == nil || o == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	if len(o.Gauges) > 0 && s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	for name, v := range o.Gauges {
		s.Gauges[name] = v
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistSnapshot{}
	}
	for name, h := range o.Histograms {
		merged := s.Histograms[name]
		merged.Merge(h)
		s.Histograms[name] = merged
	}
}

// CounterValue returns a counter by name (0 when absent or s is nil).
func (s *Snapshot) CounterValue(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Hist returns a histogram snapshot by name (zero value when absent or s
// is nil).
func (s *Snapshot) Hist(name string) HistSnapshot {
	if s == nil {
		return HistSnapshot{}
	}
	return s.Histograms[name]
}

// Summary returns the percentile digest of a named histogram — the
// figures-facing accessor: harnesses pull distributions (p50/p95/p99/max)
// instead of means.
func (s *Snapshot) Summary(name string) LatencySummary {
	return s.Hist(name).Summary()
}

// HistogramNames returns the sorted histogram names (stable iteration for
// reports and tests).
func (s *Snapshot) HistogramNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
