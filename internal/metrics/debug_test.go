package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func debugServer(t *testing.T) (*Registry, *httptest.Server) {
	t.Helper()
	r := NewRegistry()
	srv := httptest.NewServer(DebugMux(r.Snapshot))
	t.Cleanup(srv.Close)
	return r, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugMetricsEndpoint(t *testing.T) {
	r, srv := debugServer(t)
	r.Counter("lock.requests").Add(7)
	r.Histogram("lock.wait").Record(1500)

	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if snap.CounterValue("lock.requests") != 7 {
		t.Errorf("counter not served: %+v", snap.Counters)
	}
	if snap.Hist("lock.wait").Count != 1 {
		t.Errorf("histogram not served: %+v", snap.Histograms)
	}

	// The endpoint is live: a later recording shows up on the next fetch.
	r.Counter("lock.requests").Add(1)
	_, body = get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `"lock.requests":8`) {
		t.Errorf("endpoint not live: %s", body)
	}
}

func TestDebugSummaryEndpoint(t *testing.T) {
	r, srv := debugServer(t)
	for i := 0; i < 100; i++ {
		r.Histogram("wal.force").Record(uint64(i) * 1000)
	}
	code, body := get(t, srv.URL+"/metrics/summary")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var out map[string]LatencySummary
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("summary is not JSON: %v", err)
	}
	d := out["wal.force"]
	if d.Count != 100 || d.P95 < d.P50 || d.Max != 99_000 {
		t.Errorf("digest inconsistent: %+v", d)
	}
}

func TestDebugIndexAndPprof(t *testing.T) {
	r, srv := debugServer(t)
	r.Counter("tx.committed").Add(5)
	code, body := get(t, srv.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "tx.committed") {
		t.Errorf("index page: status %d body %q", code, body)
	}
	code, body = get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: status %d", code)
	}
	if code, _ := get(t, srv.URL+"/no-such-page"); code != http.StatusNotFound {
		t.Errorf("unknown path should 404, got %d", code)
	}
}

func TestServeDebugLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	addr, stop, err := ServeDebug("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	stop()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after stop")
	}
}
