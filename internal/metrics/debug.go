package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// Debug endpoint: an expvar-style live view of a registry plus the
// standard pprof handlers, mounted on a private mux so tools never touch
// http.DefaultServeMux. The snapshot provider is a function, not a
// registry pointer, so a harness that runs many registries in sequence
// (cmd/contest: one per protocol run) can swap the live one atomically.

// DebugMux builds the debug handler tree:
//
//	/metrics            registry snapshot as JSON (pretty with ?pretty)
//	/metrics/summary    histogram percentile digests as JSON
//	/debug/pprof/*      the standard runtime profiles
func DebugMux(snap func() *Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, req, snap())
	})
	mux.HandleFunc("/metrics/summary", func(w http.ResponseWriter, req *http.Request) {
		s := snap()
		out := make(map[string]LatencySummary, len(s.Histograms))
		for _, name := range s.HistogramNames() {
			out[name] = s.Summary(name)
		}
		writeJSON(w, req, out)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		s := snap()
		names := s.HistogramNames()
		counters := make([]string, 0, len(s.Counters))
		for name := range s.Counters {
			counters = append(counters, name)
		}
		sort.Strings(counters)
		fmt.Fprintf(w, "debug endpoint — /metrics (JSON), /metrics/summary, /debug/pprof/\n\n")
		for _, name := range counters {
			fmt.Fprintf(w, "%-32s %d\n", name, s.Counters[name])
		}
		for _, name := range names {
			sum := s.Summary(name)
			fmt.Fprintf(w, "%-32s n=%d avg=%dns p50=%dns p95=%dns p99=%dns max=%dns\n",
				name, sum.Count, sum.Avg, sum.P50, sum.P95, sum.P99, sum.Max)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, req *http.Request, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if req.URL.Query().Has("pretty") {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ServeDebug starts the debug endpoint on addr (e.g. "localhost:6060") and
// returns the bound address and a shutdown func. The server runs on its own
// goroutine; Serve errors after shutdown are ignored (the listener closing
// is the normal exit).
func ServeDebug(addr string, snap func() *Snapshot) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux(snap)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
