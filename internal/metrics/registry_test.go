package metrics

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestRegistrySharesInstrumentsByName(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same counter name must return the same instrument")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("same histogram name must return the same instrument")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same gauge name must return the same instrument")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Error("different names must not alias")
	}
}

func TestSnapshotValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("resident").Set(17)
	r.Histogram("lat").Record(100)
	var flips uint64 = 9
	r.Func("derived", func() uint64 { return flips })

	s := r.Snapshot()
	if s.CounterValue("hits") != 3 || s.CounterValue("derived") != 9 {
		t.Errorf("counters: %+v", s.Counters)
	}
	if s.Gauges["resident"] != 17 {
		t.Errorf("gauges: %+v", s.Gauges)
	}
	if s.Hist("lat").Count != 1 || s.Summary("lat").Max != 100 {
		t.Errorf("histograms: %+v", s.Histograms)
	}
	// Funcs are evaluated at snapshot time, not registration time.
	flips = 11
	if r.Snapshot().CounterValue("derived") != 11 {
		t.Error("func not re-evaluated per snapshot")
	}
	// Re-registration replaces.
	r.Func("derived", func() uint64 { return 1 })
	if r.Snapshot().CounterValue("derived") != 1 {
		t.Error("func re-registration must replace")
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("c").Add(2)
	r2.Counter("c").Add(5)
	r2.Counter("only2").Add(1)
	r1.Gauge("g").Set(1)
	r2.Gauge("g").Set(9)
	r1.Histogram("h").Record(4)
	r2.Histogram("h").Record(1000)

	s := r1.Snapshot()
	s.Merge(r2.Snapshot())
	if s.CounterValue("c") != 7 || s.CounterValue("only2") != 1 {
		t.Errorf("counter merge: %+v", s.Counters)
	}
	if s.Gauges["g"] != 9 {
		t.Errorf("gauge merge must take the newer value: %+v", s.Gauges)
	}
	h := s.Hist("h")
	if h.Count != 2 || h.Max != 1000 {
		t.Errorf("histogram merge: %+v", h)
	}
	// nil receivers and operands are no-ops.
	var nilSnap *Snapshot
	nilSnap.Merge(s)
	s.Merge(nil)
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(42)
	r.Histogram("h").Record(300)
	s := r.Snapshot()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Counters, back.Counters) {
		t.Errorf("counters changed across JSON: %+v vs %+v", s.Counters, back.Counters)
	}
	if !reflect.DeepEqual(s.Histograms, back.Histograms) {
		t.Errorf("histograms changed across JSON: %+v vs %+v", s.Histograms, back.Histograms)
	}
}

func TestHistogramNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "a", "m"} {
		r.Histogram(n).Record(1)
	}
	got := r.Snapshot().HistogramNames()
	want := []string{"a", "m", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("names %v, want %v", got, want)
	}
}

// TestRegistryConcurrentAccess drives get-or-create, recording, and
// snapshotting from many goroutines (the -race check for the registry map).
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := names[(g+i)%len(names)]
				r.Counter(name).Add(1)
				r.Histogram(name).Record(uint64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	var total uint64
	for _, n := range names {
		total += s.CounterValue(n)
	}
	if total != 8*500 {
		t.Errorf("lost counter increments: %d, want %d", total, 8*500)
	}
}
