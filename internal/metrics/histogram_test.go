package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		// The value must be <= its bucket's upper bound and (for non-zero
		// buckets) > the previous bucket's.
		if u := bucketUpper(bucketIndex(c.v)); c.v > u {
			t.Errorf("value %d above its bucket upper %d", c.v, u)
		}
		if b := bucketIndex(c.v); b > 0 && c.v <= bucketUpper(b-1) {
			t.Errorf("value %d should not fit bucket %d", c.v, b-1)
		}
	}
}

// oracle computes the exact rank-⌈q·n⌉ order statistic from the recorded
// values — the reference the bucketed estimate is checked against.
func oracle(sorted []uint64, q float64) uint64 {
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) || rank == 0 {
		rank++
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestPercentileVsOracle is the property test of the percentile contract:
// for arbitrary distributions the estimate never undershoots the true order
// statistic and overshoots it by less than 2x (one power-of-two bucket).
func TestPercentileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() uint64{
		"uniform":     func() uint64 { return uint64(rng.Int63n(1_000_000)) },
		"exponential": func() uint64 { return uint64(rng.ExpFloat64() * 50_000) },
		"powers":      func() uint64 { return uint64(1) << uint(rng.Intn(40)) },
		"zero-heavy": func() uint64 {
			if rng.Intn(4) != 0 {
				return 0
			}
			return uint64(rng.Int63n(1000))
		},
		"constant": func() uint64 { return 12345 },
	}
	quantiles := []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}
	for name, gen := range distributions {
		for _, n := range []int{1, 2, 10, 1000, 10000} {
			var h Histogram
			values := make([]uint64, n)
			var sum uint64
			for i := range values {
				values[i] = gen()
				sum += values[i]
				h.Record(values[i])
			}
			sort.Slice(values, func(a, b int) bool { return values[a] < values[b] })
			s := h.Snapshot()
			if s.Count != uint64(n) || s.Sum != sum || s.Max != values[n-1] {
				t.Fatalf("%s/n=%d: snapshot count=%d sum=%d max=%d, want %d/%d/%d",
					name, n, s.Count, s.Sum, s.Max, n, sum, values[n-1])
			}
			for _, q := range quantiles {
				est, truth := s.Percentile(q), oracle(values, q)
				if est < truth {
					t.Errorf("%s/n=%d: p%g = %d undershoots true %d", name, n, q*100, est, truth)
				}
				if truth == 0 {
					if est != 0 {
						t.Errorf("%s/n=%d: p%g = %d, want exactly 0", name, n, q*100, est)
					}
				} else if est >= 2*truth {
					// truth lives in bucket [2^(k-1), 2^k), whose upper bound
					// is < 2*truth — the estimate can never reach 2x.
					t.Errorf("%s/n=%d: p%g = %d overshoots true %d beyond one bucket", name, n, q*100, est, truth)
				}
			}
		}
	}
}

// TestMergeMatchesCombinedRecording: merging per-shard snapshots must be
// indistinguishable from recording everything into one histogram.
func TestMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, partA, partB Histogram
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 30))
		whole.Record(v)
		if i%2 == 0 {
			partA.Record(v)
		} else {
			partB.Record(v)
		}
	}
	merged := partA.Snapshot()
	merged.Merge(partB.Snapshot())
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged %+v, want %+v", merged, want)
	}
	for i := 0; i < numBuckets; i++ {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, merged.Buckets[i], want.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if merged.Percentile(q) != want.Percentile(q) {
			t.Errorf("p%g differs after merge", q*100)
		}
	}
}

// TestMergeIntoEmpty pins that merging into a zero-value snapshot (the
// figures aggregation path) does not drop buckets.
func TestMergeIntoEmpty(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Record(500)
	var acc HistSnapshot
	acc.Merge(h.Snapshot())
	if acc.Count != 2 || acc.Max != 500 || len(acc.Buckets) != 2 {
		t.Fatalf("merge into empty lost data: %+v", acc)
	}
}

// TestConcurrentRecorders hammers one histogram from many goroutines; run
// under -race this is the lock-freedom check, and the totals must still be
// exact (atomics lose nothing).
func TestConcurrentRecorders(t *testing.T) {
	const goroutines, perG = 8, 10000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(uint64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	n := uint64(goroutines * perG)
	if s.Count != n {
		t.Errorf("count %d, want %d", s.Count, n)
	}
	if want := n * (n - 1) / 2; s.Sum != want {
		t.Errorf("sum %d, want %d", s.Sum, want)
	}
	if want := n - 1; s.Max != want {
		t.Errorf("max %d, want %d", s.Max, want)
	}
	var bucketTotal uint64
	for _, c := range s.Buckets {
		bucketTotal += c
	}
	if bucketTotal != n {
		t.Errorf("bucket total %d, want %d", bucketTotal, n)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var h *Histogram
	h.Record(1)
	h.Observe(time.Second)
	if t0 := h.Start(); !t0.IsZero() {
		t.Error("nil Start must not read the clock")
	}
	h.Since(time.Time{})
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil snapshot not empty")
	}
	var c *Counter
	c.Add(1)
	if c.Load() != 0 {
		t.Error("nil counter")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 {
		t.Error("nil gauge")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	r.Func("x", func() uint64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestObserveClampsNegative(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Max != 0 || s.Buckets[0] != 1 {
		t.Fatalf("negative observation not clamped to zero: %+v", s)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var s HistSnapshot
	if s.Percentile(0.99) != 0 || s.Mean() != 0 || s.Summary().Count != 0 {
		t.Error("empty snapshot must report zeros")
	}
}

func TestStartSinceRecords(t *testing.T) {
	var h Histogram
	t0 := h.Start()
	if t0.IsZero() {
		t.Fatal("Start on live histogram returned zero time")
	}
	h.Since(t0)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("Since did not record: %+v", s)
	}
}
