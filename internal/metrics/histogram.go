// Package metrics is the engine's unified observability layer: a
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// latency histograms. Every subsystem (lock manager, buffer pool, WAL,
// transaction layer) registers its instruments here; run harnesses snapshot
// the registry into a mergeable, JSON-serializable document (DESIGN.md §11).
//
// Design constraints, in order:
//
//  1. Recording must be hot-path cheap: a histogram record is three atomic
//     adds plus a rare CAS for the max — no locks, no allocation, no
//     time formatting.
//  2. Everything is nil-safe: a nil *Registry hands out nil instruments,
//     and every instrument method no-ops on a nil receiver. Instrumented
//     code therefore never branches on "is metrics enabled" — it just
//     records — and a benchmark built without a registry pays only a
//     predicted-not-taken nil check (and, via Histogram.Start, skips the
//     clock read entirely).
//  3. Snapshots are plain values: mergeable across runs (figures average
//     over repetitions) and stable under JSON for golden tests.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the fixed bucket count: bucket 0 holds the value 0, bucket
// k (k >= 1) holds values v with 2^(k-1) <= v < 2^k — i.e. bits.Len64(v)
// == k. 64-bit values therefore always land in a bucket and the index is
// one machine instruction.
const numBuckets = 65

// bucketIndex maps a value to its power-of-two bucket.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Histogram is a lock-free latency/size histogram with power-of-two
// buckets. The zero value is ready to use; a nil *Histogram ignores all
// records, which is how disabled instrumentation costs (almost) nothing.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Record adds one observation. Safe for any number of concurrent callers;
// the cost is three atomic adds plus a CAS loop that only runs while v
// exceeds the current maximum.
func (h *Histogram) Record(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Observe records a duration in nanoseconds (negative durations clamp to
// zero: the wall clock can step backwards, a histogram must not).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Start returns a timestamp for a later Since. On a nil histogram it
// returns the zero time WITHOUT reading the clock — the pattern
//
//	t0 := h.Start()
//	... work ...
//	h.Since(t0)
//
// therefore compiles to two nil checks when instrumentation is off.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// Since records the time elapsed since a Start timestamp; it no-ops on a
// nil histogram or a zero timestamp.
func (h *Histogram) Since(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}

// Snapshot copies the histogram into a plain value. Counters are loaded
// individually, so under concurrent recording the cross-field relations
// (sum vs count) can be off by in-flight records — the usual contract of
// lock-free metrics.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64, 8)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// HistSnapshot is the plain-value form of a Histogram: mergeable,
// JSON-serializable, and the source of percentile estimates. Buckets maps
// bucket index -> count and holds only non-empty buckets (bucket i covers
// [2^(i-1), 2^i); bucket 0 holds exact zeros).
type HistSnapshot struct {
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	Max     uint64         `json:"max"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// Merge folds o into s (counts add, max takes the larger), so per-run or
// per-shard snapshots can be combined into one distribution.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if len(o.Buckets) > 0 && s.Buckets == nil {
		s.Buckets = make(map[int]uint64, len(o.Buckets))
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Percentile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the rank-⌈q·Count⌉ observation, capped at the observed
// maximum. The estimate is conservative: it never undershoots the true
// order statistic and overshoots it by at most 2x (one power-of-two
// bucket), which is the resolution/overhead trade the fixed layout buys.
func (s HistSnapshot) Percentile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++ // ceil, and rank is 1-based
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			if u := bucketUpper(i); u < s.Max {
				return u
			}
			return s.Max
		}
	}
	return s.Max
}

// LatencySummary is the compact, human- and JSON-friendly digest of a
// histogram: the percentile set the run report and the figures harness
// consume. All values are nanoseconds (or raw units for size histograms).
type LatencySummary struct {
	Count uint64 `json:"count"`
	Avg   uint64 `json:"avg_ns"`
	P50   uint64 `json:"p50_ns"`
	P95   uint64 `json:"p95_ns"`
	P99   uint64 `json:"p99_ns"`
	Max   uint64 `json:"max_ns"`
}

// Summary digests the snapshot into the standard percentile set.
func (s HistSnapshot) Summary() LatencySummary {
	return LatencySummary{
		Count: s.Count,
		Avg:   s.Mean(),
		P50:   s.Percentile(0.50),
		P95:   s.Percentile(0.95),
		P99:   s.Percentile(0.99),
		Max:   s.Max,
	}
}
