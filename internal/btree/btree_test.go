package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/splid"
)

func newTree(t testing.TB) *Tree {
	t.Helper()
	s := pagestore.Open(pagestore.NewMemBackend(), 256)
	tr, err := Create(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return tr
}

func TestInsertGet(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, err)
	}
	if _, err := tr.Get([]byte("zz")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(zz) = %v, want ErrNotFound", err)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Upsert.
	if err := tr.Insert([]byte("a"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, _ = tr.Get([]byte("a"))
	if string(v) != "one" {
		t.Errorf("after upsert Get(a) = %q", v)
	}
	if tr.Len() != 2 {
		t.Errorf("Len after upsert = %d", tr.Len())
	}
}

func TestInsertValidation(t *testing.T) {
	tr := newTree(t)
	if err := tr.Insert(nil, []byte("v")); err == nil {
		t.Error("empty key should fail")
	}
	if err := tr.Insert(make([]byte, MaxKeyLen+1), nil); !errors.Is(err, ErrKeyTooLong) {
		t.Errorf("long key: %v", err)
	}
	if err := tr.Insert([]byte("k"), make([]byte, MaxValueLen+1)); !errors.Is(err, ErrValueTooLong) {
		t.Errorf("long value: %v", err)
	}
	if err := tr.Insert(make([]byte, MaxKeyLen), make([]byte, MaxValueLen)); err != nil {
		t.Errorf("max-size cell should fit: %v", err)
	}
}

func TestSplitsManyKeys(t *testing.T) {
	tr := newTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		if err := tr.Insert(k, v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, err := tr.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %d = %q", i, v)
		}
	}
	// Full ascending scan is sorted and complete.
	var last []byte
	count := 0
	err := tr.Ascend(nil, nil, func(k, v []byte) bool {
		if last != nil && bytes.Compare(last, k) >= 0 {
			t.Fatalf("scan out of order: %q after %q", k, last)
		}
		last = append(last[:0], k...)
		count++
		return true
	})
	if err != nil || count != n {
		t.Fatalf("scan: count=%d err=%v", count, err)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 1000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	for i := 0; i < 1000; i += 2 {
		if err := tr.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 500 {
		t.Errorf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, err := tr.Get([]byte(fmt.Sprintf("k%04d", i)))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present (err=%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept key %d lost: %v", i, err)
		}
	}
	if err := tr.Delete([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(nope) = %v", err)
	}
}

func TestDeleteAllAndReuse(t *testing.T) {
	tr := newTree(t)
	for round := 0; round < 3; round++ {
		for i := 0; i < 2000; i++ {
			if err := tr.Insert([]byte(fmt.Sprintf("r%d-k%05d", round, i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 2000; i++ {
			if err := tr.Delete([]byte(fmt.Sprintf("r%d-k%05d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
	}
	// Page reuse kept the file from growing without bound: after 3 identical
	// rounds the backend should hold far fewer pages than 3x a single round.
	if n := tr.store.Backend().NumPages(); n > 200 {
		t.Errorf("backend grew to %d pages despite free-list reuse", n)
	}
}

func TestAscendRange(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
	}
	var got []string
	tr.Ascend([]byte("k010"), []byte("k015"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"k010", "k011", "k012", "k013", "k014"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("range scan = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	tr.Ascend(nil, nil, func(k, v []byte) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestDescend(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 100; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%03d", i)), nil)
	}
	var got []string
	tr.Descend([]byte("k005"), []byte("k002"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"k004", "k003", "k002"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Descend = %v, want %v", got, want)
	}
	// nil high starts at the last key inclusive.
	got = got[:0]
	tr.Descend(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 2
	})
	if fmt.Sprint(got) != fmt.Sprint([]string{"k099", "k098"}) {
		t.Errorf("Descend(nil) = %v", got)
	}
}

func TestSeeks(t *testing.T) {
	tr := newTree(t)
	for _, k := range []string{"b", "d", "f"} {
		tr.Insert([]byte(k), []byte(k+k))
	}
	check := func(name string, k []byte, err error, want string) {
		t.Helper()
		if want == "" {
			if !errors.Is(err, ErrNotFound) {
				t.Errorf("%s: got %q, err %v; want ErrNotFound", name, k, err)
			}
			return
		}
		if err != nil || string(k) != want {
			t.Errorf("%s = %q, %v; want %q", name, k, err, want)
		}
	}
	k, _, err := tr.SeekGE([]byte("c"))
	check("SeekGE(c)", k, err, "d")
	k, _, err = tr.SeekGE([]byte("d"))
	check("SeekGE(d)", k, err, "d")
	k, _, err = tr.SeekGE([]byte("g"))
	check("SeekGE(g)", k, err, "")
	k, _, err = tr.SeekGT([]byte("d"))
	check("SeekGT(d)", k, err, "f")
	k, _, err = tr.SeekGT([]byte("f"))
	check("SeekGT(f)", k, err, "")
	k, _, err = tr.SeekLT([]byte("d"))
	check("SeekLT(d)", k, err, "b")
	k, _, err = tr.SeekLT([]byte("b"))
	check("SeekLT(b)", k, err, "")
	k, _, err = tr.SeekLE([]byte("d"))
	check("SeekLE(d)", k, err, "d")
	k, _, err = tr.SeekLE([]byte("e"))
	check("SeekLE(e)", k, err, "d")
	k, _, err = tr.SeekLE([]byte("a"))
	check("SeekLE(a)", k, err, "")
	k, _, err = tr.SeekLT(nil)
	check("SeekLT(nil)", k, err, "f")
}

func TestDeleteRange(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 200; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%03d", i)), nil)
	}
	n, err := tr.DeleteRange([]byte("k050"), []byte("k150"))
	if err != nil || n != 100 {
		t.Fatalf("DeleteRange = %d, %v", n, err)
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, err := tr.Get([]byte("k100")); !errors.Is(err, ErrNotFound) {
		t.Error("k100 should be gone")
	}
	if _, err := tr.Get([]byte("k049")); err != nil {
		t.Error("k049 should remain")
	}
	if _, err := tr.Get([]byte("k150")); err != nil {
		t.Error("k150 (exclusive limit) should remain")
	}
}

func TestOpenRecomputesLen(t *testing.T) {
	s := pagestore.Open(pagestore.NewMemBackend(), 256)
	defer s.Close()
	tr, err := Create(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	root := tr.Root()
	tr2, err := Open(s, root)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 500 {
		t.Errorf("reopened Len = %d", tr2.Len())
	}
	if v, err := tr2.Get([]byte("k123")); err != nil || string(v) != "v" {
		t.Errorf("reopened Get = %q, %v", v, err)
	}
}

// TestModelEquivalence drives the tree and a sorted-map model with the same
// random operation stream and checks full agreement, including range scans.
func TestModelEquivalence(t *testing.T) {
	tr := newTree(t)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	randKey := func() []byte {
		return []byte(fmt.Sprintf("key-%04d", rng.Intn(3000)))
	}
	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // insert
			k := randKey()
			v := []byte(fmt.Sprintf("v%d", step))
			if err := tr.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = string(v)
		case 5, 6: // delete
			k := randKey()
			err := tr.Delete(k)
			_, inModel := model[string(k)]
			if inModel != (err == nil) {
				t.Fatalf("step %d: delete(%s) err=%v, model has=%v", step, k, err, inModel)
			}
			delete(model, string(k))
		case 7, 8: // get
			k := randKey()
			v, err := tr.Get(k)
			mv, inModel := model[string(k)]
			if inModel != (err == nil) || (inModel && string(v) != mv) {
				t.Fatalf("step %d: get(%s) = %q,%v; model %q,%v", step, k, v, err, mv, inModel)
			}
		case 9: // occasional full-scan comparison
			if step%500 != 0 {
				continue
			}
			var keys []string
			for k := range model {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			i := 0
			err := tr.Ascend(nil, nil, func(k, v []byte) bool {
				if i >= len(keys) || string(k) != keys[i] || string(v) != model[keys[i]] {
					t.Fatalf("step %d: scan diverges at %d: %q", step, i, k)
				}
				i++
				return true
			})
			if err != nil || i != len(keys) {
				t.Fatalf("step %d: scan count %d want %d (err %v)", step, i, len(keys), err)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("step %d: Len %d != model %d", step, tr.Len(), len(model))
		}
	}
}

func TestSPLIDKeysDocumentOrder(t *testing.T) {
	// Store a small taDOM tree by encoded SPLID and verify scans deliver
	// document order and subtree ranges work via SubtreeLimit.
	tr := newTree(t)
	labels := []string{
		"1", "1.3", "1.3.3", "1.3.3.1", "1.3.3.1.3", "1.3.5", "1.3.5.3",
		"1.5", "1.5.3", "1.5.3.3", "1.5.3.3.3", "1.5.5",
	}
	perm := rand.New(rand.NewSource(3)).Perm(len(labels))
	for _, i := range perm {
		id := splid.MustParse(labels[i])
		if err := tr.Insert(id.Encode(), []byte(labels[i])); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	tr.Ascend(nil, nil, func(k, v []byte) bool {
		got = append(got, string(v))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(labels) {
		t.Errorf("document order scan = %v", got)
	}
	// Subtree scan of 1.3.
	sub := splid.MustParse("1.3")
	got = got[:0]
	tr.Ascend(sub.Encode(), sub.SubtreeLimit().Encode(), func(k, v []byte) bool {
		got = append(got, string(v))
		return true
	})
	want := []string{"1.3", "1.3.3", "1.3.3.1", "1.3.3.1.3", "1.3.5", "1.3.5.3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("subtree scan = %v, want %v", got, want)
	}
}

func TestConcurrentReaders(t *testing.T) {
	tr := newTree(t)
	for i := 0; i < 2000; i++ {
		tr.Insert([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				n := rng.Intn(2000)
				v, err := tr.Get([]byte(fmt.Sprintf("k%05d", n)))
				if err != nil || string(v) != fmt.Sprintf("v%d", n) {
					t.Errorf("get %d = %q, %v", n, v, err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestConcurrentMixed(t *testing.T) {
	tr := newTree(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("w%d-k%04d", w, i))
				if err := tr.Insert(k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := tr.Delete(k); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	want := 0
	for w := 0; w < 4; w++ {
		for i := 0; i < 500; i++ {
			if i%3 != 0 {
				want++
			}
		}
	}
	if tr.Len() != want {
		t.Errorf("Len = %d, want %d", tr.Len(), want)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := newTree(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := newTree(b)
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get([]byte(fmt.Sprintf("key-%09d", i%n)))
	}
}

func BenchmarkAscend(b *testing.B) {
	tr := newTree(b)
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert([]byte(fmt.Sprintf("key-%09d", i)), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Ascend(nil, nil, func(k, v []byte) bool { count++; return true })
		if count != n {
			b.Fatal("bad count")
		}
	}
}

func TestSeparatorTruncation(t *testing.T) {
	tr := newTree(t)
	// Long shared-prefix keys: separators must be truncated well below the
	// full key length.
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("a/very/long/common/prefix/key-%06d", i))
		if err := tr.Insert(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 3000 || st.Depth < 2 || st.Separators == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The full keys are 34 bytes; page prefix compression must shrink the
	// stored suffixes to a few bytes (the paper's "2-3 bytes on average").
	const fullKeyLen = 34.0
	avgStored := float64(st.KeyBytes+st.PrefixBytes) / float64(st.Keys)
	if avgStored > fullKeyLen/3 {
		t.Errorf("stored key bytes %.1fB, want heavy compression of %.0fB keys", avgStored, fullKeyLen)
	}
	avgSep := float64(st.SeparatorBytes) / float64(st.Separators)
	if avgSep > fullKeyLen+4 {
		t.Errorf("separator suffixes average %.1fB, want at most roughly one full key", avgSep)
	}
	// Lookups still work everywhere (routing via truncated separators).
	for i := 0; i < 3000; i += 7 {
		k := []byte(fmt.Sprintf("a/very/long/common/prefix/key-%06d", i))
		if _, err := tr.Get(k); err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
	}
	// Range scans unaffected.
	n := 0
	tr.Ascend(nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 3000 {
		t.Errorf("scan count = %d", n)
	}
}

func TestShortestSeparator(t *testing.T) {
	cases := []struct{ left, right, want string }{
		{"abc", "abd", "abd"},
		{"abc", "abcx", "abcx"},
		{"a", "b", "b"},
		{"abcdef", "abcq", "abcq"},
		{"abc/1", "abc/2zzzzzz", "abc/2"},
	}
	for _, c := range cases {
		got := shortestSeparator([]byte(c.left), []byte(c.right))
		if string(got) != c.want {
			t.Errorf("shortestSeparator(%q, %q) = %q, want %q", c.left, c.right, got, c.want)
		}
		if !(c.left < string(got) && string(got) <= c.right) {
			t.Errorf("separator %q does not separate %q and %q", got, c.left, c.right)
		}
	}
}
