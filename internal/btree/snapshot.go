package btree

import (
	"bytes"
	"fmt"

	"repro/internal/pagestore"
)

// SnapView is a read-only view of a tree as of one WAL snapshot LSN. It
// descends from a pinned historical root and resolves every page through
// pagestore.Store.FixAt, which serves the live frame when it is visible at
// the snapshot and the page's retained version-chain image otherwise — so a
// view observes exactly the committed tree shape at its LSN, no matter how
// far the live tree has moved on.
//
// A view takes the tree's reader latch around each operation, just like the
// live read paths: the latch is what serializes its byte reads against a
// writer's in-place page mutations (the version layer handles visibility,
// the latch handles atomicity). Views are cheap value-like handles; create
// one per snapshot transaction and share it freely across its reads.
type SnapView struct {
	t    *Tree
	root pagestore.PageID
	snap uint64
}

// ViewAt returns a read-only view of the tree rooted at root (the caller's
// recorded root as of the snapshot — the live root may have split away from
// it since) at WAL position snap.
func (t *Tree) ViewAt(root pagestore.PageID, snap uint64) *SnapView {
	return &SnapView{t: t, root: root, snap: snap}
}

// SnapshotLSN returns the WAL position the view reads at.
func (v *SnapView) SnapshotLSN() uint64 { return v.snap }

// fix resolves one page at the view's snapshot.
func (v *SnapView) fix(id pagestore.PageID) ([]byte, func(), error) {
	return v.t.store.FixAt(id, v.snap)
}

// findLeaf descends to the leaf covering key, returning its page image and
// release func.
func (v *SnapView) findLeaf(key []byte) ([]byte, func(), error) {
	id := v.root
	for {
		p, rel, err := v.fix(id)
		if err != nil {
			return nil, nil, fmt.Errorf("btree: snapshot descend to page %d: %w", id, err)
		}
		if pageKind(p) == kindLeaf {
			return p, rel, nil
		}
		id = childPage(p, childIndexFor(p, key))
		rel()
	}
}

// findEdgeLeaf descends to the first (dir < 0) or last (dir > 0) leaf.
func (v *SnapView) findEdgeLeaf(dir int) ([]byte, func(), error) {
	id := v.root
	for {
		p, rel, err := v.fix(id)
		if err != nil {
			return nil, nil, fmt.Errorf("btree: snapshot descend to edge page %d: %w", id, err)
		}
		if pageKind(p) == kindLeaf {
			return p, rel, nil
		}
		if dir < 0 || nCells(p) == 0 {
			id = child0(p)
		} else {
			id = childAt(p, nCells(p)-1)
		}
		rel()
	}
}

// Get returns a copy of the value stored under key at the snapshot, or
// ErrNotFound.
func (v *SnapView) Get(key []byte) ([]byte, error) {
	lt := v.t.mu.rlock()
	defer v.t.mu.runlock(lt)
	p, rel, err := v.findLeaf(key)
	if err != nil {
		return nil, err
	}
	defer rel()
	slot, found := search(p, key)
	if !found {
		return nil, ErrNotFound
	}
	_, val := cellAt(p, slot)
	return append([]byte(nil), val...), nil
}

// Has reports whether key is present at the snapshot.
func (v *SnapView) Has(key []byte) (bool, error) {
	_, err := v.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Ascend visits keys in [start, limit) in ascending order as of the
// snapshot. fn's slices alias page (or version-chain) memory and are only
// valid during the callback; return false to stop.
func (v *SnapView) Ascend(start, limit []byte, fn func(key, val []byte) bool) error {
	lt := v.t.mu.rlock()
	defer v.t.mu.runlock(lt)
	var p []byte
	var rel func()
	var err error
	if start == nil {
		p, rel, err = v.findEdgeLeaf(-1)
	} else {
		p, rel, err = v.findLeaf(start)
	}
	if err != nil {
		return err
	}
	slot := 0
	if start != nil {
		slot, _ = search(p, start)
	}
	var kbuf []byte
	for {
		for ; slot < nCells(p); slot++ {
			kbuf = fullKey(p, slot, kbuf[:0])
			_, val := cellAt(p, slot)
			if limit != nil && bytes.Compare(kbuf, limit) >= 0 {
				rel()
				return nil
			}
			if !fn(kbuf, val) {
				rel()
				return nil
			}
		}
		next := leafNext(p)
		rel()
		if next == pagestore.InvalidPage {
			return nil
		}
		p, rel, err = v.fix(next)
		if err != nil {
			return err
		}
		slot = 0
	}
}

// Descend visits keys strictly below high in descending order (a nil high
// starts at the last key, inclusive), stopping before keys below low.
func (v *SnapView) Descend(high, low []byte, fn func(key, val []byte) bool) error {
	lt := v.t.mu.rlock()
	defer v.t.mu.runlock(lt)
	var p []byte
	var rel func()
	var err error
	var slot int
	if high == nil {
		p, rel, err = v.findEdgeLeaf(1)
		if err != nil {
			return err
		}
		slot = nCells(p) - 1
	} else {
		p, rel, err = v.findLeaf(high)
		if err != nil {
			return err
		}
		s, _ := search(p, high)
		slot = s - 1
	}
	var kbuf []byte
	for {
		for ; slot >= 0; slot-- {
			kbuf = fullKey(p, slot, kbuf[:0])
			_, val := cellAt(p, slot)
			if low != nil && bytes.Compare(kbuf, low) < 0 {
				rel()
				return nil
			}
			if !fn(kbuf, val) {
				rel()
				return nil
			}
		}
		prev := leafPrev(p)
		rel()
		if prev == pagestore.InvalidPage {
			return nil
		}
		p, rel, err = v.fix(prev)
		if err != nil {
			return err
		}
		slot = nCells(p) - 1
	}
}

// SeekGE returns copies of the first key-value pair with key >= target at
// the snapshot, or ErrNotFound when no such key exists.
func (v *SnapView) SeekGE(target []byte) (key, val []byte, err error) {
	err = ErrNotFound
	serr := v.Ascend(target, nil, func(k, vb []byte) bool {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), vb...)
		err = nil
		return false
	})
	if serr != nil {
		return nil, nil, serr
	}
	return key, val, err
}

// SeekLT returns the last pair with key strictly less than target at the
// snapshot; a nil target seeks the greatest key.
func (v *SnapView) SeekLT(target []byte) (key, val []byte, err error) {
	err = ErrNotFound
	serr := v.Descend(target, nil, func(k, vb []byte) bool {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), vb...)
		err = nil
		return false
	})
	if serr != nil {
		return nil, nil, serr
	}
	return key, val, err
}
