package btree

import (
	"bytes"
	"fmt"

	"repro/internal/pagestore"
)

// Get returns a copy of the value stored under key, or ErrNotFound.
func (t *Tree) Get(key []byte) ([]byte, error) {
	slot := t.mu.rlock()
	defer t.mu.runlock(slot)
	f, err := t.findLeaf(key)
	if err != nil {
		return nil, err
	}
	defer t.store.Unfix(f)
	slot, found := search(f.Data(), key)
	if !found {
		return nil, ErrNotFound
	}
	_, v := cellAt(f.Data(), slot)
	return append([]byte(nil), v...), nil
}

// Has reports whether key is present.
func (t *Tree) Has(key []byte) (bool, error) {
	_, err := t.Get(key)
	if err == ErrNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// findLeaf descends to the leaf page covering key and returns it pinned.
func (t *Tree) findLeaf(key []byte) (*pagestore.Frame, error) {
	id := t.root
	for {
		f, err := t.store.Fix(id)
		if err != nil {
			return nil, fmt.Errorf("btree: descend to page %d: %w", id, err)
		}
		p := f.Data()
		if pageKind(p) == kindLeaf {
			return f, nil
		}
		id = childPage(p, childIndexFor(p, key))
		t.store.Unfix(f)
	}
}

// findEdgeLeaf descends to the first (dir < 0) or last (dir > 0) leaf.
func (t *Tree) findEdgeLeaf(dir int) (*pagestore.Frame, error) {
	id := t.root
	for {
		f, err := t.store.Fix(id)
		if err != nil {
			return nil, fmt.Errorf("btree: descend to edge page %d: %w", id, err)
		}
		p := f.Data()
		if pageKind(p) == kindLeaf {
			return f, nil
		}
		if dir < 0 || nCells(p) == 0 {
			id = child0(p)
		} else {
			id = childAt(p, nCells(p)-1)
		}
		t.store.Unfix(f)
	}
}

// Insert stores val under key, replacing any existing value (upsert).
func (t *Tree) Insert(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("%w (%d bytes)", ErrKeyTooLong, len(key))
	}
	if len(val) > MaxValueLen {
		return fmt.Errorf("%w (%d bytes)", ErrValueTooLong, len(val))
	}
	t.mu.lock()
	defer t.mu.unlock()
	sep, newID, added, err := t.insertRec(t.root, key, val)
	if err != nil {
		return err
	}
	if added {
		t.size++
	}
	if newID != pagestore.InvalidPage {
		rf, err := t.newPage(kindInternal)
		if err != nil {
			return err
		}
		p := rf.Data()
		setChild0(p, t.root)
		if !insertCell(p, 0, sep, encodeChild(newID)) {
			panic("btree: root separator does not fit an empty page")
		}
		t.root = rf.ID()
		t.store.Unfix(rf)
	}
	return nil
}

func encodeChild(id pagestore.PageID) []byte {
	return []byte{byte(id >> 24), byte(id >> 16), byte(id >> 8), byte(id)}
}

// insertRec inserts into the subtree at id. When the page splits, it returns
// the separator key and the new right sibling's page ID.
func (t *Tree) insertRec(id pagestore.PageID, key, val []byte) (sep []byte, newID pagestore.PageID, added bool, err error) {
	f, err := t.store.Fix(id)
	if err != nil {
		return nil, pagestore.InvalidPage, false, fmt.Errorf("btree: insert: fix page %d: %w", id, err)
	}
	defer t.store.Unfix(f)
	p := f.Data()

	if pageKind(p) == kindLeaf {
		slot, found := search(p, key)
		if found {
			if replaceCellValue(p, slot, key, val) {
				f.MarkDirty()
				return nil, pagestore.InvalidPage, false, nil
			}
			// The larger value did not fit even after compaction;
			// replaceCellValue has already removed the old cell, so split
			// and place the new one.
			f.MarkDirty()
			sep, newID, err := t.splitLeafAndInsert(f, key, val)
			return sep, newID, false, err
		}
		if insertCell(p, slot, key, val) {
			f.MarkDirty()
			return nil, pagestore.InvalidPage, true, nil
		}
		sep, newID, err := t.splitLeafAndInsert(f, key, val)
		return sep, newID, true, err
	}

	idx := childIndexFor(p, key)
	childSep, childNew, added, err := t.insertRec(childPage(p, idx), key, val)
	if err != nil || childNew == pagestore.InvalidPage {
		return nil, pagestore.InvalidPage, added, err
	}
	slot, _ := search(p, childSep)
	if insertCell(p, slot, childSep, encodeChild(childNew)) {
		f.MarkDirty()
		return nil, pagestore.InvalidPage, added, nil
	}
	sep, newID, err = t.splitInternalAndInsert(f, childSep, childNew)
	return sep, newID, added, err
}

// splitLeafAndInsert splits the full leaf in frame f and inserts (key, val)
// into the proper half. It returns the separator (first key of the right
// page) and the right page's ID.
func (t *Tree) splitLeafAndInsert(f *pagestore.Frame, key, val []byte) ([]byte, pagestore.PageID, error) {
	p := f.Data()
	rf, err := t.newPage(kindLeaf)
	if err != nil {
		return nil, pagestore.InvalidPage, err
	}
	defer t.store.Unfix(rf)
	rp := rf.Data()

	n := nCells(p)
	mid := splitPoint(p)
	// The right page adopts the left prefix so the moved cells keep their
	// size; both halves then recompress to their own best prefix.
	adoptPrefix(rp, p)
	var kbuf []byte
	for i := mid; i < n; i++ {
		kbuf = fullKey(p, i, kbuf[:0])
		_, v := cellAt(p, i)
		if !insertCell(rp, i-mid, kbuf, v) {
			panic("btree: right half does not fit an empty page")
		}
	}
	setNCells(p, mid)
	compact(p)
	recompress(p)
	recompress(rp)
	f.MarkDirty()
	rf.MarkDirty()

	// Chain links: left <-> right <-> old next.
	oldNext := leafNext(p)
	setLeafNext(p, rf.ID())
	setLeafPrev(rp, f.ID())
	setLeafNext(rp, oldNext)
	if oldNext != pagestore.InvalidPage {
		nf, err := t.store.Fix(oldNext)
		if err != nil {
			return nil, pagestore.InvalidPage, err
		}
		setLeafPrev(nf.Data(), rf.ID())
		nf.MarkDirty()
		t.store.Unfix(nf)
	}

	sep := fullKey(rp, 0, nil)
	target, tp := f, p
	if bytes.Compare(key, sep) >= 0 {
		target, tp = rf, rp
	}
	slot, _ := search(tp, key)
	if !insertCell(tp, slot, key, val) {
		return nil, pagestore.InvalidPage, fmt.Errorf("btree: cell of %d+%d bytes does not fit a half-empty page", len(key), len(val))
	}
	target.MarkDirty()
	// The separator may have changed if key landed at slot 0 of the right
	// page. Truncate it to the shortest byte string that still separates the
	// halves — separator truncation complements the page prefix compression
	// in keeping internal pages dense.
	leftLast := fullKey(p, nCells(p)-1, nil)
	newSep := fullKey(rp, 0, nil)
	return shortestSeparator(leftLast, newSep), rf.ID(), nil
}

// shortestSeparator returns the shortest byte string s with left < s <=
// right, given left < right: the shared prefix plus right's first
// distinguishing byte. Routing stays correct for any such s because an
// internal cell's child covers keys >= its separator.
func shortestSeparator(left, right []byte) []byte {
	cpl := 0
	for cpl < len(left) && cpl < len(right) && left[cpl] == right[cpl] {
		cpl++
	}
	if cpl >= len(right) {
		// left is a strict prefix... impossible for left < right; be safe.
		return append([]byte(nil), right...)
	}
	return append([]byte(nil), right[:cpl+1]...)
}

// splitInternalAndInsert splits a full internal page and inserts the
// (sep, child) pair. The middle separator moves up to the caller.
func (t *Tree) splitInternalAndInsert(f *pagestore.Frame, sep []byte, child pagestore.PageID) ([]byte, pagestore.PageID, error) {
	p := f.Data()
	rf, err := t.newPage(kindInternal)
	if err != nil {
		return nil, pagestore.InvalidPage, err
	}
	defer t.store.Unfix(rf)
	rp := rf.Data()

	n := nCells(p)
	mid := n / 2
	up := fullKey(p, mid, nil)
	setChild0(rp, childAt(p, mid))
	adoptPrefix(rp, p)
	var kbuf []byte
	for i := mid + 1; i < n; i++ {
		kbuf = fullKey(p, i, kbuf[:0])
		_, v := cellAt(p, i)
		if !insertCell(rp, i-mid-1, kbuf, v) {
			panic("btree: right half does not fit an empty internal page")
		}
	}
	setNCells(p, mid)
	compact(p)
	recompress(p)
	recompress(rp)
	f.MarkDirty()
	rf.MarkDirty()

	// Insert the pending separator into the correct half.
	target, tp := f, p
	if bytes.Compare(sep, up) >= 0 {
		target, tp = rf, rp
	}
	slot, _ := search(tp, sep)
	if !insertCell(tp, slot, sep, encodeChild(child)) {
		return nil, pagestore.InvalidPage, fmt.Errorf("btree: separator does not fit a half-empty page")
	}
	target.MarkDirty()
	return up, rf.ID(), nil
}

// splitPoint picks the slot index splitting the page's cell bytes roughly in
// half, keeping at least one cell on each side.
func splitPoint(p []byte) int {
	n := nCells(p)
	if n < 2 {
		panic("btree: splitting a page with fewer than 2 cells")
	}
	total := liveBytes(p)
	acc := 0
	for i := 0; i < n-1; i++ {
		k, v := cellAt(p, i)
		acc += cellHeaderLen + len(k) + len(v)
		if acc >= total/2 {
			return i + 1
		}
	}
	return n - 1
}

// Delete removes key, returning ErrNotFound if absent.
func (t *Tree) Delete(key []byte) error {
	t.mu.lock()
	defer t.mu.unlock()
	removed, _, err := t.deleteRec(t.root, key)
	if err != nil {
		return err
	}
	if !removed {
		return ErrNotFound
	}
	t.size--
	t.collapseRoot()
	return nil
}

// collapseRoot replaces an internal root that has a single child.
func (t *Tree) collapseRoot() {
	for {
		f, err := t.store.Fix(t.root)
		if err != nil {
			return
		}
		p := f.Data()
		if pageKind(p) != kindInternal || nCells(p) != 0 {
			t.store.Unfix(f)
			return
		}
		old := t.root
		t.root = child0(p)
		t.store.Unfix(f)
		t.free = append(t.free, old)
	}
}

// deleteRec removes key from the subtree at id. emptied reports that the
// page at id holds no data anymore and was detached from leaf chains; the
// caller must drop its pointer and reclaim the page.
func (t *Tree) deleteRec(id pagestore.PageID, key []byte) (removed, emptied bool, err error) {
	f, err := t.store.Fix(id)
	if err != nil {
		return false, false, fmt.Errorf("btree: delete: fix page %d: %w", id, err)
	}
	defer t.store.Unfix(f)
	p := f.Data()

	if pageKind(p) == kindLeaf {
		slot, found := search(p, key)
		if !found {
			return false, false, nil
		}
		removeCell(p, slot)
		f.MarkDirty()
		if nCells(p) > 0 || id == t.root {
			return true, false, nil
		}
		if err := t.unlinkLeaf(p); err != nil {
			return true, false, err
		}
		return true, true, nil
	}

	idx := childIndexFor(p, key)
	childID := childPage(p, idx)
	removed, childEmptied, err := t.deleteRec(childID, key)
	if err != nil || !childEmptied {
		return removed, false, err
	}
	t.free = append(t.free, childID)
	if idx < 0 {
		// child0 vanished: promote the first cell's child.
		if nCells(p) == 0 {
			f.MarkDirty()
			return removed, id != t.root, nil
		}
		setChild0(p, childAt(p, 0))
		removeCell(p, 0)
	} else {
		removeCell(p, idx)
	}
	f.MarkDirty()
	return removed, false, nil
}

// unlinkLeaf splices an emptied leaf out of the doubly linked leaf chain.
func (t *Tree) unlinkLeaf(p []byte) error {
	prev, next := leafPrev(p), leafNext(p)
	if prev != pagestore.InvalidPage {
		pf, err := t.store.Fix(prev)
		if err != nil {
			return err
		}
		setLeafNext(pf.Data(), next)
		pf.MarkDirty()
		t.store.Unfix(pf)
	}
	if next != pagestore.InvalidPage {
		nf, err := t.store.Fix(next)
		if err != nil {
			return err
		}
		setLeafPrev(nf.Data(), prev)
		nf.MarkDirty()
		t.store.Unfix(nf)
	}
	return nil
}

// Ascend visits keys in [start, limit) in ascending order. A nil start
// begins at the first key; a nil limit runs to the end. fn's slices alias
// page memory and are only valid during the callback; return false to stop.
func (t *Tree) Ascend(start, limit []byte, fn func(key, val []byte) bool) error {
	lt := t.mu.rlock()
	defer t.mu.runlock(lt)
	var f *pagestore.Frame
	var err error
	if start == nil {
		f, err = t.findEdgeLeaf(-1)
	} else {
		f, err = t.findLeaf(start)
	}
	if err != nil {
		return err
	}
	slot := 0
	if start != nil {
		slot, _ = search(f.Data(), start)
	}
	var kbuf []byte
	for {
		p := f.Data()
		for ; slot < nCells(p); slot++ {
			kbuf = fullKey(p, slot, kbuf[:0])
			_, v := cellAt(p, slot)
			if limit != nil && bytes.Compare(kbuf, limit) >= 0 {
				t.store.Unfix(f)
				return nil
			}
			if !fn(kbuf, v) {
				t.store.Unfix(f)
				return nil
			}
		}
		next := leafNext(p)
		t.store.Unfix(f)
		if next == pagestore.InvalidPage {
			return nil
		}
		f, err = t.store.Fix(next)
		if err != nil {
			return err
		}
		slot = 0
	}
}

// Descend visits keys strictly below high in descending order, stopping
// before keys below low. A nil high begins at the last key (inclusive); a
// nil low runs to the first key. fn's slices alias page memory; return
// false to stop.
func (t *Tree) Descend(high, low []byte, fn func(key, val []byte) bool) error {
	lt := t.mu.rlock()
	defer t.mu.runlock(lt)
	var f *pagestore.Frame
	var err error
	var slot int
	if high == nil {
		f, err = t.findEdgeLeaf(1)
		if err != nil {
			return err
		}
		slot = nCells(f.Data()) - 1
	} else {
		f, err = t.findLeaf(high)
		if err != nil {
			return err
		}
		s, _ := search(f.Data(), high)
		slot = s - 1
	}
	var kbuf []byte
	for {
		p := f.Data()
		for ; slot >= 0; slot-- {
			kbuf = fullKey(p, slot, kbuf[:0])
			_, v := cellAt(p, slot)
			if low != nil && bytes.Compare(kbuf, low) < 0 {
				t.store.Unfix(f)
				return nil
			}
			if !fn(kbuf, v) {
				t.store.Unfix(f)
				return nil
			}
		}
		prev := leafPrev(p)
		t.store.Unfix(f)
		if prev == pagestore.InvalidPage {
			return nil
		}
		f, err = t.store.Fix(prev)
		if err != nil {
			return err
		}
		slot = nCells(f.Data()) - 1
	}
}

// SeekGE returns copies of the first key-value pair with key >= target, or
// ErrNotFound when no such key exists.
func (t *Tree) SeekGE(target []byte) (key, val []byte, err error) {
	err = ErrNotFound
	serr := t.Ascend(target, nil, func(k, v []byte) bool {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		err = nil
		return false
	})
	if serr != nil {
		return nil, nil, serr
	}
	return key, val, err
}

// SeekGT returns the first pair with key strictly greater than target.
func (t *Tree) SeekGT(target []byte) (key, val []byte, err error) {
	err = ErrNotFound
	serr := t.Ascend(target, nil, func(k, v []byte) bool {
		if bytes.Equal(k, target) {
			return true
		}
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		err = nil
		return false
	})
	if serr != nil {
		return nil, nil, serr
	}
	return key, val, err
}

// SeekLT returns the last pair with key strictly less than target; a nil
// target seeks the greatest key in the tree.
func (t *Tree) SeekLT(target []byte) (key, val []byte, err error) {
	err = ErrNotFound
	serr := t.Descend(target, nil, func(k, v []byte) bool {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		err = nil
		return false
	})
	if serr != nil {
		return nil, nil, serr
	}
	return key, val, err
}

// SeekLE returns the last pair with key <= target.
func (t *Tree) SeekLE(target []byte) (key, val []byte, err error) {
	v, gerr := t.Get(target)
	if gerr == nil {
		return append([]byte(nil), target...), v, nil
	}
	if gerr != ErrNotFound {
		return nil, nil, gerr
	}
	return t.SeekLT(target)
}

// DeleteRange removes all keys in [start, limit) and returns how many were
// deleted. It is the bulk operation behind subtree deletion.
func (t *Tree) DeleteRange(start, limit []byte) (int, error) {
	// Collect first (cheap: keys only), then delete; avoids mutating pages
	// under the iterator.
	var keys [][]byte
	err := t.Ascend(start, limit, func(k, _ []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if err := t.Delete(k); err != nil {
			return 0, fmt.Errorf("btree: DeleteRange at %x: %w", k, err)
		}
	}
	return len(keys), nil
}
