// Package btree implements the B*-tree of XTC's storage layer (Section 3.2,
// Figure 6): an on-page B+tree with variable-length byte keys in strict
// byte order and doubly linked leaf pages for scans in both directions.
//
// Keys are encoded SPLIDs (whose byte order equals document order) or
// element-index keys; the tree itself is agnostic and orders by
// bytes.Compare. Following the paper's implementation restriction, keys are
// limited to MaxKeyLen = 128 bytes — the document layer reacts to longer
// labels with subtree relabeling, exactly as XTC does.
//
// Concurrency: a tree-level striped reader latch (see latch.go) admits
// parallel readers without sharing a reader-count cache line and
// serializes writers. Transaction-level concurrency control happens above
// this layer (that is the paper's subject); the tree only needs to be
// internally consistent.
//
// Deletion is lazy: pages may become underfull, and a page is reclaimed
// (onto an in-memory free list) only when it empties completely. This suits
// the benchmark workloads, where subtree deletions remove contiguous key
// ranges that empty whole leaves.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pagestore"
)

// MaxKeyLen is the largest admissible key, mirroring the paper's "key
// length < 128B in B-trees" restriction.
const MaxKeyLen = 128

// MaxValueLen bounds inline values so that a handful of cells always fit on
// a page. Larger payloads must be chunked by the caller.
const MaxValueLen = 2048

// Page layout. The first pagestore.PageHeaderSize bytes of every page
// belong to the buffer manager's recovery header (pageLSN + checksum); the
// btree header starts right after it, at pageBase. All offsets below are
// absolute page offsets.
//
//	off pageBase+0: pageKind (1 = leaf, 2 = internal)
//	off pageBase+1: unused
//	off pageBase+2: nCells  uint16
//	off pageBase+4: prev    uint32 (leaf)  | child0 uint32 (internal)
//	off pageBase+8: next    uint32 (leaf)  | unused
//	off pageBase+12: cellStart uint16 — lowest byte offset used by cell bodies
//	off pageBase+14: prefixLen uint16 — length of the page-wide key prefix
//	off pageBase+16: prefix bytes (prefixLen), shared by every key on the page
//	then:  slot array, nCells × uint16 cell-body offsets, sorted by key
//	...
//	cells grow downward from the page end:
//	  [keyLen u16][valLen u16][key suffix][value]
//
// Prefix compression (Section 3.2 of the paper): every key on a page
// shares the page prefix; cells store only the suffix. Splits recompute
// each half's prefix from its keys, so densely clustered SPLIDs shrink to
// a few bytes per entry. Inserting a key that does not share the prefix
// first shortens the prefix (rewriting the page).
//
// Internal cells use the child page ID (4 bytes) as the value; child0 in
// the header is the subtree left of the first separator key: child0 covers
// keys < key[0], cell i's child covers keys in [key[i], key[i+1]).
const (
	kindLeaf     = 1
	kindInternal = 2

	pageBase = pagestore.PageHeaderSize

	offKind      = pageBase + 0
	offNCells    = pageBase + 2
	offPrev      = pageBase + 4
	offChild0    = pageBase + 4
	offNext      = pageBase + 8
	offCellStart = pageBase + 12
	offPrefixLen = pageBase + 14
	headerLen    = pageBase + 16

	cellHeaderLen = 4

	// maxPrefixLen caps the page prefix; keys are at most MaxKeyLen anyway.
	maxPrefixLen = MaxKeyLen
)

// ErrKeyTooLong is returned for keys above MaxKeyLen; the document layer
// treats it as the trigger for subtree relabeling.
var ErrKeyTooLong = errors.New("btree: key exceeds MaxKeyLen")

// ErrValueTooLong is returned for values above MaxValueLen.
var ErrValueTooLong = errors.New("btree: value exceeds MaxValueLen")

// ErrNotFound is returned by Get and Delete for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// Tree is a B+tree over a page store. Create with Create or attach to an
// existing root with Open.
type Tree struct {
	mu    treeLatch
	store *pagestore.Store
	root  pagestore.PageID
	free  []pagestore.PageID // reclaimed pages available for reuse
	size  int                // number of keys; maintained, not persisted
}

// Create allocates an empty tree (a single empty leaf root).
func Create(store *pagestore.Store) (*Tree, error) {
	t := &Tree{store: store}
	f, err := t.newPage(kindLeaf)
	if err != nil {
		return nil, err
	}
	t.root = f.ID()
	t.store.Unfix(f)
	return t, nil
}

// Open attaches to an existing tree rooted at root. The key count is
// recomputed by a leaf walk.
func Open(store *pagestore.Store, root pagestore.PageID) (*Tree, error) {
	t := &Tree{store: store, root: root}
	n := 0
	err := t.Ascend(nil, nil, func(k, v []byte) bool { n++; return true })
	if err != nil {
		return nil, err
	}
	t.size = n
	return t, nil
}

// Root returns the current root page ID; callers persist it in their own
// metadata to reopen the tree later.
func (t *Tree) Root() pagestore.PageID {
	slot := t.mu.rlock()
	defer t.mu.runlock(slot)
	return t.root
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int {
	slot := t.mu.rlock()
	defer t.mu.runlock(slot)
	return t.size
}

// --- page accessors -------------------------------------------------------

func pageKind(p []byte) byte       { return p[offKind] }
func nCells(p []byte) int          { return int(binary.BigEndian.Uint16(p[offNCells:])) }
func setNCells(p []byte, n int)    { binary.BigEndian.PutUint16(p[offNCells:], uint16(n)) }
func cellStart(p []byte) int       { return int(binary.BigEndian.Uint16(p[offCellStart:])) }
func setCellStart(p []byte, o int) { binary.BigEndian.PutUint16(p[offCellStart:], uint16(o)) }

func leafPrev(p []byte) pagestore.PageID {
	return pagestore.PageID(binary.BigEndian.Uint32(p[offPrev:]))
}
func leafNext(p []byte) pagestore.PageID {
	return pagestore.PageID(binary.BigEndian.Uint32(p[offNext:]))
}
func setLeafPrev(p []byte, id pagestore.PageID) { binary.BigEndian.PutUint32(p[offPrev:], uint32(id)) }
func setLeafNext(p []byte, id pagestore.PageID) { binary.BigEndian.PutUint32(p[offNext:], uint32(id)) }

func child0(p []byte) pagestore.PageID {
	return pagestore.PageID(binary.BigEndian.Uint32(p[offChild0:]))
}
func setChild0(p []byte, id pagestore.PageID) { binary.BigEndian.PutUint32(p[offChild0:], uint32(id)) }

func prefixLen(p []byte) int { return int(binary.BigEndian.Uint16(p[offPrefixLen:])) }
func setPrefixLen(p []byte, n int) {
	binary.BigEndian.PutUint16(p[offPrefixLen:], uint16(n))
}

// pagePrefix returns the page-wide key prefix (aliases page memory).
func pagePrefix(p []byte) []byte { return p[headerLen : headerLen+prefixLen(p)] }

// slotBase is the byte offset of the slot array (after the prefix).
func slotBase(p []byte) int { return headerLen + prefixLen(p) }

func slotOff(p []byte, i int) int {
	return int(binary.BigEndian.Uint16(p[slotBase(p)+2*i:]))
}
func setSlotOff(p []byte, i, off int) {
	binary.BigEndian.PutUint16(p[slotBase(p)+2*i:], uint16(off))
}

// cellAt returns the key *suffix* and value of slot i without copying; the
// full key is pagePrefix(p) + suffix.
func cellAt(p []byte, i int) (suffix, val []byte) {
	off := slotOff(p, i)
	klen := int(binary.BigEndian.Uint16(p[off:]))
	vlen := int(binary.BigEndian.Uint16(p[off+2:]))
	suffix = p[off+cellHeaderLen : off+cellHeaderLen+klen]
	val = p[off+cellHeaderLen+klen : off+cellHeaderLen+klen+vlen]
	return suffix, val
}

// fullKey appends the full key of slot i (prefix + suffix) to buf.
func fullKey(p []byte, i int, buf []byte) []byte {
	buf = append(buf, pagePrefix(p)...)
	k, _ := cellAt(p, i)
	return append(buf, k...)
}

func childAt(p []byte, i int) pagestore.PageID {
	_, v := cellAt(p, i)
	return pagestore.PageID(binary.BigEndian.Uint32(v))
}

// search finds the first slot whose full key is >= key; found reports an
// exact match at that slot. The page prefix is compared once, then the
// binary search runs on suffixes only.
func search(p []byte, key []byte) (slot int, found bool) {
	pl := prefixLen(p)
	if pl > 0 {
		head := key
		if len(head) > pl {
			head = head[:pl]
		}
		switch bytes.Compare(head, pagePrefix(p)) {
		case -1:
			return 0, false // key below every page key
		case 1:
			return nCells(p), false // key above every page key
		default:
			if len(key) < pl {
				// key is a strict prefix of the page prefix: below all.
				return 0, false
			}
		}
		key = key[pl:]
	}
	lo, hi := 0, nCells(p)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := cellAt(p, mid)
		switch bytes.Compare(k, key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndexFor returns which child pointer covers key in an internal page:
// -1 means child0, i >= 0 means cell i's child.
func childIndexFor(p []byte, key []byte) int {
	slot, found := search(p, key)
	if found {
		return slot
	}
	return slot - 1
}

func childPage(p []byte, idx int) pagestore.PageID {
	if idx < 0 {
		return child0(p)
	}
	return childAt(p, idx)
}

// freeSpace returns the bytes available for one more cell (body + slot).
func freeSpace(p []byte) int {
	return cellStart(p) - (slotBase(p) + 2*nCells(p)) - 2
}

// liveBytes returns the bytes cell bodies would need after compaction.
func liveBytes(p []byte) int {
	total := 0
	for i := 0; i < nCells(p); i++ {
		k, v := cellAt(p, i)
		total += cellHeaderLen + len(k) + len(v)
	}
	return total
}

func initPage(p []byte, kind byte) {
	// Zero only the btree header: the pagestore recovery header before
	// pageBase (pageLSN, checksum) survives page reuse from the free list.
	for i := pageBase; i < headerLen; i++ {
		p[i] = 0
	}
	p[offKind] = kind
	setCellStart(p, pagestore.PageSize)
	setPrefixLen(p, 0)
	setLeafPrev(p, pagestore.InvalidPage)
	if kind == kindLeaf {
		setLeafNext(p, pagestore.InvalidPage)
	}
}

func (t *Tree) newPage(kind byte) (*pagestore.Frame, error) {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		f, err := t.store.Fix(id)
		if err != nil {
			return nil, fmt.Errorf("btree: reuse free page %d: %w", id, err)
		}
		initPage(f.Data(), kind)
		f.MarkDirty()
		return f, nil
	}
	f, err := t.store.FixNew()
	if err != nil {
		return nil, fmt.Errorf("btree: grow: %w", err)
	}
	initPage(f.Data(), kind)
	f.MarkDirty()
	return f, nil
}

// insertCell places a cell for the FULL key at slot i, compacting or
// shortening the page prefix as needed; it reports false when the page
// cannot hold the cell.
func insertCell(p []byte, i int, key, val []byte) bool {
	pl := prefixLen(p)
	if pl > 0 && !bytes.HasPrefix(key, pagePrefix(p)) {
		// The new key breaks the shared prefix: shrink it to the common
		// part (rewriting every suffix) before inserting.
		common := 0
		pre := pagePrefix(p)
		for common < pl && common < len(key) && key[common] == pre[common] {
			common++
		}
		if !rewritePrefix(p, common) {
			return false
		}
		pl = common
	}
	suffix := key[pl:]
	need := cellHeaderLen + len(suffix) + len(val)
	if freeSpace(p) < need {
		if slotBase(p)+2*(nCells(p)+1)+liveBytes(p)+need > pagestore.PageSize {
			return false
		}
		compact(p)
		if freeSpace(p) < need {
			return false
		}
	}
	off := cellStart(p) - need
	binary.BigEndian.PutUint16(p[off:], uint16(len(suffix)))
	binary.BigEndian.PutUint16(p[off+2:], uint16(len(val)))
	copy(p[off+cellHeaderLen:], suffix)
	copy(p[off+cellHeaderLen+len(suffix):], val)
	setCellStart(p, off)
	n := nCells(p)
	base := slotBase(p)
	// Shift slots right of i.
	copy(p[base+2*(i+1):base+2*(n+1)], p[base+2*i:base+2*n])
	setSlotOff(p, i, off)
	setNCells(p, n+1)
	return true
}

// removeCell drops slot i, leaving the body as garbage for later compaction.
func removeCell(p []byte, i int) {
	n := nCells(p)
	base := slotBase(p)
	copy(p[base+2*i:base+2*(n-1)], p[base+2*(i+1):base+2*n])
	setNCells(p, n-1)
}

// replaceCellValue rewrites the value of slot i in place when sizes match,
// otherwise removes and reinserts. key is the full key.
func replaceCellValue(p []byte, i int, key, val []byte) bool {
	off := slotOff(p, i)
	vlen := int(binary.BigEndian.Uint16(p[off+2:]))
	klen := int(binary.BigEndian.Uint16(p[off:]))
	if vlen == len(val) {
		copy(p[off+cellHeaderLen+klen:], val)
		return true
	}
	removeCell(p, i)
	return insertCell(p, i, key, val)
}

// compact rewrites all live cells tightly against the page end, keeping the
// prefix unchanged.
func compact(p []byte) {
	n := nCells(p)
	prefix := append([]byte(nil), pagePrefix(p)...)
	type cell struct{ key, val []byte }
	cells := make([]cell, n)
	for i := 0; i < n; i++ {
		k, v := cellAt(p, i)
		full := append(append([]byte(nil), prefix...), k...)
		cells[i] = cell{full, append([]byte(nil), v...)}
	}
	setCellStart(p, pagestore.PageSize)
	setNCells(p, 0)
	for i, c := range cells {
		if !insertCell(p, i, c.key, c.val) {
			panic("btree: compaction lost cells")
		}
	}
}

// rewritePrefix rebuilds the page with a different (shorter or longer)
// prefix length over the same full keys. It reports false when the rewrite
// would not fit (only possible when shortening a prefix on a full page).
func rewritePrefix(p []byte, newLen int) bool {
	n := nCells(p)
	oldPrefix := append([]byte(nil), pagePrefix(p)...)
	type cell struct{ key, val []byte }
	cells := make([]cell, n)
	total := 0
	for i := 0; i < n; i++ {
		k, v := cellAt(p, i)
		full := append(append([]byte(nil), oldPrefix...), k...)
		cells[i] = cell{full, append([]byte(nil), v...)}
		total += cellHeaderLen + len(full) - newLen + len(v)
	}
	if headerLen+newLen+2*n+total > pagestore.PageSize {
		return false
	}
	var newPrefix []byte
	if n > 0 {
		newPrefix = cells[0].key[:newLen]
	} else if newLen <= len(oldPrefix) {
		newPrefix = oldPrefix[:newLen]
	}
	setNCells(p, 0)
	setCellStart(p, pagestore.PageSize)
	setPrefixLen(p, len(newPrefix))
	copy(p[headerLen:], newPrefix)
	for i, c := range cells {
		if !insertCell(p, i, c.key, c.val) {
			panic("btree: prefix rewrite lost cells")
		}
	}
	return true
}

// adoptPrefix copies src's page prefix into the (empty) page dst, so cells
// moved between the pages keep their compression level and are guaranteed
// to fit.
func adoptPrefix(dst, src []byte) {
	if nCells(dst) != 0 {
		panic("btree: adoptPrefix on a non-empty page")
	}
	pl := prefixLen(src)
	setPrefixLen(dst, pl)
	copy(dst[headerLen:], pagePrefix(src))
}

// recompress raises the page prefix to the longest prefix shared by the
// first and last key (and hence by all keys, since they are sorted). Called
// after splits, when key populations change wholesale.
func recompress(p []byte) {
	n := nCells(p)
	if n < 2 {
		return
	}
	first := fullKey(p, 0, nil)
	last := fullKey(p, n-1, nil)
	common := 0
	for common < len(first) && common < len(last) && first[common] == last[common] {
		common++
	}
	if common > maxPrefixLen {
		common = maxPrefixLen
	}
	if common == prefixLen(p) {
		return
	}
	rewritePrefix(p, common)
}

// TreeStats describes the tree's physical shape (tooling and the paper's
// storage-density discussion).
type TreeStats struct {
	// Depth is the number of levels (1 = a single leaf).
	Depth int
	// LeafPages and InternalPages count pages per kind.
	LeafPages, InternalPages int
	// Keys is the number of stored keys.
	Keys int
	// KeyBytes and ValueBytes are the live payload volumes in leaves;
	// KeyBytes counts stored key *suffixes* (after prefix compression).
	KeyBytes, ValueBytes int
	// PrefixBytes is the total size of the shared page prefixes.
	PrefixBytes int
	// SeparatorBytes is the total size of internal separator keys; prefix
	// truncation keeps it far below Keys' average key length.
	SeparatorBytes int
	// Separators counts internal cells.
	Separators int
}

// Stats walks the tree and returns its physical statistics.
func (t *Tree) Stats() (TreeStats, error) {
	slot := t.mu.rlock()
	defer t.mu.runlock(slot)
	var st TreeStats
	err := t.statsRec(t.root, 1, &st)
	return st, err
}

func (t *Tree) statsRec(id pagestore.PageID, depth int, st *TreeStats) error {
	f, err := t.store.Fix(id)
	if err != nil {
		return err
	}
	defer t.store.Unfix(f)
	p := f.Data()
	if depth > st.Depth {
		st.Depth = depth
	}
	st.PrefixBytes += prefixLen(p)
	if pageKind(p) == kindLeaf {
		st.LeafPages++
		for i := 0; i < nCells(p); i++ {
			k, v := cellAt(p, i)
			st.Keys++
			st.KeyBytes += len(k)
			st.ValueBytes += len(v)
		}
		return nil
	}
	st.InternalPages++
	if err := t.statsRec(child0(p), depth+1, st); err != nil {
		return err
	}
	for i := 0; i < nCells(p); i++ {
		k, _ := cellAt(p, i)
		st.Separators++
		st.SeparatorBytes += len(k)
		if err := t.statsRec(childAt(p, i), depth+1, st); err != nil {
			return err
		}
	}
	return nil
}
