package btree

import (
	"sync"
	"unsafe"
)

// treeLatch is a striped "big-reader" tree latch: readers take one of
// latchStripes read-write mutexes (picked per goroutine), writers take all
// of them. With the buffer pool sharded, concurrent readers of one tree
// otherwise all bounce the single RWMutex reader count on one cache line;
// striping spreads that traffic so read-mostly workloads (navigation,
// scans, the protocol contest's read transactions) scale with the Fix path
// instead of re-serializing above it. Writers pay latchStripes lock
// acquisitions — structural updates already dwarf that cost.
type treeLatch struct {
	stripes [latchStripes]paddedRWMutex
}

// latchStripes is the reader-stripe count (power of two).
const latchStripes = 8

// paddedRWMutex keeps each stripe on its own cache line so reader counts
// on different stripes never false-share.
type paddedRWMutex struct {
	sync.RWMutex
	_ [128 - unsafe.Sizeof(sync.RWMutex{})%128]byte
}

// rlock takes a read latch and returns the stripe token runlock needs.
// The stripe is picked by hashing the address of a stack variable:
// goroutines live on distinct stacks, so concurrent readers spread across
// stripes, while a single goroutine's nested calls (none exist today) would
// still land deterministically during one call.
func (l *treeLatch) rlock() int {
	var anchor byte
	h := uintptr(unsafe.Pointer(&anchor))
	slot := int((h >> 6) & (latchStripes - 1))
	l.stripes[slot].RLock()
	return slot
}

// runlock releases the read latch taken by rlock.
func (l *treeLatch) runlock(slot int) {
	l.stripes[slot].RUnlock()
}

// lock takes the latch exclusively. Stripes are acquired in index order, so
// concurrent writers cannot deadlock against each other.
func (l *treeLatch) lock() {
	for i := range l.stripes {
		l.stripes[i].Lock()
	}
}

// unlock releases the exclusive latch.
func (l *treeLatch) unlock() {
	for i := range l.stripes {
		l.stripes[i].Unlock()
	}
}
