package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair builds a loopback TCP pair so the wrapper runs over a real
// net.Conn (Close semantics, deadlines).
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var (
		server net.Conn
		serr   error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, serr = l.Accept()
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serr != nil {
		t.Fatal(serr)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestDisarmedIsTransparent(t *testing.T) {
	a, b := pipePair(t)
	in := NewInjector(Config{Seed: 1, DropProb: 1, PartialProb: 1, CorruptProb: 1})
	fc := in.Wrap(a, 0)
	msg := []byte("hello through the storm")
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("disarmed wrapper altered bytes: %q != %q", got, msg)
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("disarmed wrapper counted faults: %+v", st)
	}
}

func TestDropKillsConnection(t *testing.T) {
	a, b := pipePair(t)
	in := NewInjector(Config{Seed: 7, DropProb: 1})
	fc := in.Wrap(a, 0)
	in.Arm()
	_, err := fc.Write([]byte("doomed"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// The peer must observe the death, not a hang.
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after drop")
	}
	if in.Stats().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

func TestPartialWriteTruncates(t *testing.T) {
	a, b := pipePair(t)
	in := NewInjector(Config{Seed: 3, PartialProb: 1})
	fc := in.Wrap(a, 0)
	in.Arm()
	msg := []byte("0123456789abcdef")
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != len(msg)/2 {
		t.Fatalf("partial wrote %d bytes, want %d", n, len(msg)/2)
	}
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(b)
	if len(got) != len(msg)/2 || !bytes.Equal(got, msg[:len(msg)/2]) {
		t.Fatalf("peer got %q, want prefix %q", got, msg[:len(msg)/2])
	}
}

func TestCorruptFlipsOneByteOnCopy(t *testing.T) {
	a, b := pipePair(t)
	in := NewInjector(Config{Seed: 11, CorruptProb: 1})
	fc := in.Wrap(a, 0)
	in.Arm()
	msg := []byte("pristine payload bytes")
	orig := append([]byte(nil), msg...)
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("corrupt write: %v", err)
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("caller's buffer was mutated")
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want exactly 1", diff)
	}
	if in.Stats().Corruptions == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestStallDelays(t *testing.T) {
	a, b := pipePair(t)
	in := NewInjector(Config{Seed: 5, StallProb: 1, Stall: 80 * time.Millisecond})
	fc := in.Wrap(a, 0)
	in.Arm()
	t0 := time.Now()
	if _, err := fc.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 80*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 80ms stall", d)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if in.Stats().Stalls == 0 {
		t.Fatal("stall not counted")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// Two injectors with the same seed must agree call-by-call on whether
	// each write faults.
	run := func() []bool {
		a, _ := pipePair(t)
		in := NewInjector(Config{Seed: 42, DropProb: 0.3})
		var outcomes []bool
		for i := 0; i < 8; i++ {
			fc := in.Wrap(a, int64(i))
			in.Arm()
			_, err := fc.Write([]byte("x"))
			outcomes = append(outcomes, errors.Is(err, ErrInjected))
			if err != nil {
				// conn is dead; re-pair for the next wrapper
				a, _ = pipePair(t)
			}
		}
		return outcomes
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("schedules diverge at call %d: %v vs %v", i, x, y)
		}
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Config{Seed: 9, DropProb: 1})
	fl := NewListener(l, in)
	defer fl.Close()
	go func() {
		c, err := net.Dial("tcp", l.Addr().String())
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	c, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faultconn.Conn", c)
	}
	in.Arm()
	if _, err := c.Read(make([]byte, 2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected read drop, got %v", err)
	}
}
