// Package faultconn injects deterministic network faults into net.Conn
// traffic — the wire analogue of pagestore.FaultBackend. A wrapped
// connection can drop (die mid-conversation), stall (delay I/O), cut writes
// short, or corrupt outgoing bytes, each under an independent seeded
// probability, so chaos suites exercise the client's redial/resume path and
// the server's keep-alive/reaper path with reproducible schedules.
//
// Faults are gated: a wrapper starts disarmed (transparent pass-through) and
// injects only between Arm and Disarm, so harnesses can bring a topology up
// cleanly before turning the weather on.
package faultconn

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base of every fault the wrapper introduces itself
// (drops and partial writes); stalls and corruption surface through the
// peer instead (timeouts, CRC failures).
var ErrInjected = fmt.Errorf("faultconn: injected fault")

// Config sets the fault mix. Probabilities are per I/O call in [0,1];
// zero-valued fields inject nothing.
type Config struct {
	// Seed makes the schedule reproducible; each connection derives its own
	// generator from it (a Listener adds the accept index).
	Seed int64
	// DropProb kills the connection outright (both directions) — the peer
	// sees EOF or a reset, the caller gets ErrInjected.
	DropProb float64
	// StallProb delays the I/O call by Stall before proceeding — long
	// enough stalls trip keep-alive windows and client call timeouts.
	StallProb float64
	// Stall is the delay injected by StallProb (default 50ms).
	Stall time.Duration
	// PartialProb writes only a prefix of the buffer and then kills the
	// connection — the peer sees a truncated frame.
	PartialProb float64
	// CorruptProb flips one byte of an outgoing buffer (on a copy; the
	// caller's slice is untouched) — the peer sees a CRC mismatch.
	CorruptProb float64
}

// Stats counts injected faults.
type Stats struct {
	Drops, Stalls, Partials, Corruptions int64
}

// Injector owns the armed gate and the counters for a family of wrapped
// connections (typically everything accepted by one Listener, or every
// conn dialed through one harness dialer).
type Injector struct {
	cfg   Config
	armed atomic.Bool

	drops, stalls, partials, corruptions atomic.Int64
}

// NewInjector builds a disarmed injector for the given mix.
func NewInjector(cfg Config) *Injector {
	if cfg.Stall <= 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// Arm enables fault injection.
func (in *Injector) Arm() { in.armed.Store(true) }

// Disarm disables fault injection; wrapped connections pass through.
func (in *Injector) Disarm() { in.armed.Store(false) }

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Drops:       in.drops.Load(),
		Stalls:      in.stalls.Load(),
		Partials:    in.partials.Load(),
		Corruptions: in.corruptions.Load(),
	}
}

// Wrap returns c with this injector's fault mix applied, drawing from a
// generator seeded with cfg.Seed+salt (use distinct salts for distinct
// connections to decorrelate their schedules).
func (in *Injector) Wrap(c net.Conn, salt int64) *Conn {
	return &Conn{Conn: c, in: in, rng: rand.New(rand.NewSource(in.cfg.Seed + salt))}
}

// Conn is a net.Conn with faults. Read and Write may run on different
// goroutines (and do, under the wire protocol); the generator is
// mutex-guarded so the schedule stays deterministic per call sequence even
// though the interleaving across directions is scheduling-dependent.
type Conn struct {
	net.Conn
	in  *Injector
	rng *rand.Rand
	mu  sync.Mutex
}

// roll draws one uniform variate under the lock.
func (c *Conn) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// Read implements net.Conn with drop and stall faults on the inbound path.
func (c *Conn) Read(p []byte) (int, error) {
	if c.in.armed.Load() {
		cfg := &c.in.cfg
		if cfg.DropProb > 0 && c.roll() < cfg.DropProb {
			c.in.drops.Add(1)
			c.Conn.Close()
			return 0, fmt.Errorf("%w: read drop", ErrInjected)
		}
		if cfg.StallProb > 0 && c.roll() < cfg.StallProb {
			c.in.stalls.Add(1)
			time.Sleep(cfg.Stall)
		}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn with drop, stall, partial-write, and corruption
// faults on the outbound path.
func (c *Conn) Write(p []byte) (int, error) {
	if c.in.armed.Load() {
		cfg := &c.in.cfg
		if cfg.DropProb > 0 && c.roll() < cfg.DropProb {
			c.in.drops.Add(1)
			c.Conn.Close()
			return 0, fmt.Errorf("%w: write drop", ErrInjected)
		}
		if cfg.StallProb > 0 && c.roll() < cfg.StallProb {
			c.in.stalls.Add(1)
			time.Sleep(cfg.Stall)
		}
		if cfg.PartialProb > 0 && len(p) > 1 && c.roll() < cfg.PartialProb {
			c.in.partials.Add(1)
			n, _ := c.Conn.Write(p[:len(p)/2])
			c.Conn.Close()
			return n, fmt.Errorf("%w: partial write (%d of %d bytes)", ErrInjected, n, len(p))
		}
		if cfg.CorruptProb > 0 && len(p) > 0 && c.roll() < cfg.CorruptProb {
			c.in.corruptions.Add(1)
			c.mu.Lock()
			i := c.rng.Intn(len(p))
			c.mu.Unlock()
			q := make([]byte, len(p))
			copy(q, p)
			q[i] ^= 0xFF
			return c.Conn.Write(q)
		}
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection carries the
// injector's fault mix, each decorrelated by its accept index.
type Listener struct {
	net.Listener
	in   *Injector
	next atomic.Int64
}

// NewListener wraps l with in's faults.
func NewListener(l net.Listener, in *Injector) *Listener {
	return &Listener{Listener: l, in: in}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c, l.next.Add(1)), nil
}
