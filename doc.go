// Package repro reproduces "Contest of XML Lock Protocols" (Haustein,
// Härder, Luttenberger; VLDB 2006): an embedded XML database engine in the
// style of XTC with taDOM storage, SPLID node labeling, a pluggable lock
// manager (meta-synchronization), the paper's 11 XML lock protocols, and
// the TaMix benchmark framework that regenerates every figure of the
// paper's evaluation.
//
// The public API lives in internal/core (see examples/quickstart); the
// benchmark harness in this package's bench_test.go regenerates Figures
// 7-11, one benchmark per figure. See README.md, DESIGN.md, and
// EXPERIMENTS.md.
package repro
