GO ?= go

.PHONY: build test verify bench-lock chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# chaos runs the fault-injection and recovery suite under the race
# detector: seeded storage faults and torn writes, buffer-manager retry,
# transaction restart loops, lock-timeout residue, and undo aggregation.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Retry|Torn|Timeout|Restart|Abort' \
		./internal/pagestore/ ./internal/tamix/ ./internal/node/ ./internal/tx/

# verify is the full pre-merge gate: compile, vet, the complete test suite
# under the race detector (the lock package's equivalence tests lean on it
# heavily), and the focused chaos suite.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) chaos

# bench-lock runs the lock-table contention benchmark and appends one JSON
# line per result to BENCH_lock.json, so successive runs accumulate a
# history.
bench-lock:
	$(GO) test ./internal/lock/ -run XXX -bench BenchmarkLockTableContention -benchtime 1s -benchmem | \
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^BenchmarkLockTableContention/ { \
		printf "{\"date\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", date, $$1, $$2, $$3, $$5, $$7 }' \
	>> BENCH_lock.json
