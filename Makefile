# The bench targets pipe `go test -bench` through awk; without pipefail a
# failing test binary would vanish behind awk's exit 0 and the target would
# "succeed" while appending nothing. bash + pipefail makes every pipeline
# stage's failure the target's failure.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: build test verify bench-lock bench-wal bench-buffer bench-recovery bench-snapshot bench-all bench-server chaos netchaos recovery metrics server

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# chaos runs the fault-injection and recovery suite under the race
# detector: seeded storage faults and torn writes, buffer-manager retry,
# the buffer-pool torture and flusher tests, transaction restart loops,
# lock-timeout residue, and undo aggregation.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Retry|Torn|Timeout|Restart|Abort|Torture|Flusher' \
		./internal/pagestore/ ./internal/tamix/ ./internal/node/ ./internal/tx/

# netchaos runs the connection-lifecycle resilience suite under the race
# detector: the faultconn injector's unit tests, server keep-alive kills of
# silent connections, the idle-session reaper (locks released, connection
# survives), abrupt client kills mid-burst (zero lock residue), client-side
# session resume with abort-worthy errors, a server bounce under a
# 16-connection TaMix fleet, and a TaMix run over fault-injected wires.
netchaos:
	$(GO) test -race ./internal/faultconn/
	$(GO) test -race -run 'TestNetChaos' ./internal/bibserve/

# recovery runs the WAL and crash-recovery suite under the race detector:
# the seeded crash matrix (log crashes, torn write-backs, full-budget
# bursts, checkpointed bursts, crashes inside the checkpoint protocol's
# three phases), the serial-vs-parallel redo oracle, recovery idempotence,
# the checkpoint codec and master-record tests (plus their fuzz corpora),
# checksum rejection on page fix, and the transaction double-finish /
# durable-commit contracts. TestMain fails the run if the crash matrix
# orphans scratch directories. Budget: ~2-3 min on 8 cores (the matrix is
# seed-parallel; -short roughly quarters it).
recovery:
	$(GO) test -race -run 'Recover|Crash|TxnDone|Checksum|Corrupt|WAL|GroupCommit|Checkpoint|Master|Fuzz' \
		./internal/wal/ ./internal/storage/ ./internal/tx/ ./internal/pagestore/

# metrics runs the observability-layer suite under the race detector: the
# histogram property tests, concurrent recorders, registry access, the
# debug endpoint, the run-report golden schema, and the lock manager's
# shutdown-drain test.
metrics:
	$(GO) test -race -run 'Percentile|Histogram|Bucket|Concurrent|Registry|Snapshot|Merge|Debug|ServeDebug|Nil|Report|MinDur|CloseDrains' \
		./internal/metrics/ ./internal/tamix/ ./internal/lock/

# server runs the client/server suite under the race detector: the loopback
# TaMix smoke test (every protocol selectable per session), the
# abrupt-disconnect and lock-wait-cancellation teardown tests, the server
# metrics golden test, plus the wire-protocol codec tests and the frame/
# message fuzz seed corpus (go test runs fuzz targets over their corpus
# unless -fuzz starts an expedition).
server:
	$(GO) test -race ./internal/server/ ./internal/client/ ./internal/bibserve/
	$(GO) test -race -run 'Fuzz|Frame|Msg|Codec|Roundtrip' ./internal/wire/

# verify is the full pre-merge gate: compile, vet, the complete test suite
# under the race detector (the lock package's equivalence tests lean on it
# heavily), the allocation-regression guards (non-race: the race detector
# changes allocation behavior, so alloc_test.go is tagged !race), and the
# focused chaos, netchaos, recovery, metrics, and server suites.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run 'TestAlloc' ./internal/lock/
	$(MAKE) chaos
	$(MAKE) netchaos
	$(MAKE) recovery
	$(MAKE) metrics
	$(MAKE) server

# bench-lock runs the lock-table contention benchmark and appends one JSON
# line per result to BENCH_lock.json, so successive runs accumulate a
# history.
bench-lock:
	$(GO) test ./internal/lock/ -run XXX -bench BenchmarkLockTableContention -benchtime 1s -benchmem | \
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^BenchmarkLockTableContention/ { \
		printf "{\"date\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", date, $$1, $$2, $$3, $$5, $$7 }' \
	>> BENCH_lock.json

# bench-wal compares single-writer commit (one fsync per record) against
# group commit (concurrent forcers sharing fsyncs) on a file-backed log,
# appending one JSON line per variant to BENCH_wal.json.
bench-wal:
	$(GO) test ./internal/wal/ -run XXX -bench BenchmarkWALAppend -benchtime 2000x | \
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^BenchmarkWALAppend/ { \
		printf "{\"date\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"mb_per_s\":%s,\"appends_per_sync\":%s}\n", date, $$1, $$2, $$3, $$5, $$7 }' \
	>> BENCH_wal.json

# bench-buffer runs the buffer-pool contention benchmark (sharded pool vs
# the single-mutex LRU it replaced, at 1/4/16 goroutines, pure-hit and
# mixed hit/miss scenarios) and appends one JSON line per result plus a
# g16 speedup summary to BENCH_buffer.json.
bench-buffer:
	$(GO) test ./internal/pagestore/ -run XXX -bench BenchmarkBufferContention -benchtime 1s -benchmem | \
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^BenchmarkBufferContention/ { \
		printf "{\"date\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", date, $$1, $$2, $$3, $$5, $$7; \
		if ($$1 ~ /mixed\/sharded\/g16/) sharded = $$3; \
		if ($$1 ~ /mixed\/mutex\/g16/) mutex = $$3 } \
		END { if (sharded > 0 && mutex > 0) \
			printf "{\"date\":\"%s\",\"bench\":\"BufferContentionSpeedup/mixed/g16\",\"mutex_ns_per_op\":%s,\"sharded_ns_per_op\":%s,\"speedup\":%.2f}\n", date, mutex, sharded, mutex / sharded }' \
	>> BENCH_buffer.json

# bench-recovery measures restart latency on crashed TaMix images across
# WAL length × checkpointing × redo parallelism, plus a redo-heavy image
# that isolates the shard-parallel redo pass (redo_ns = slowest shard's
# wall clock). Appends one JSON line per cell and two summary lines — the
# checkpoint restart bound and the 16-shard redo speedup — to
# BENCH_recovery.json.
bench-recovery:
	$(GO) test ./internal/storage/ -run XXX -bench BenchmarkRecovery -benchtime 20x | \
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^BenchmarkRecovery/ { \
		printf "{\"date\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"records\":%s,\"redo_ns\":%s}\n", date, $$1, $$2, $$3, $$5, $$7; \
		if ($$1 ~ /ops=480\/ckpt=false\/shards=1(-|$$)/) longNo = $$3; \
		if ($$1 ~ /ops=480\/ckpt=true\/shards=1(-|$$)/) longCk = $$3; \
		if ($$1 ~ /redo=heavy\/shards=1(-|$$)/) serial = $$7; \
		if ($$1 ~ /redo=heavy\/shards=16(-|$$)/) par = $$7 } \
		END { if (longNo > 0 && longCk > 0) \
			printf "{\"date\":\"%s\",\"bench\":\"RecoveryCheckpointBound/ops=480\",\"nockpt_ns\":%s,\"ckpt_ns\":%s,\"restart_ratio\":%.2f}\n", date, longNo, longCk, longNo / longCk; \
		if (serial > 0 && par > 0) \
			printf "{\"date\":\"%s\",\"bench\":\"RecoveryRedoSpeedup/shards=16\",\"serial_redo_ns\":%s,\"parallel_redo_ns\":%s,\"speedup\":%.2f}\n", date, serial, par, serial / par }' \
	>> BENCH_recovery.json

# bench-snapshot compares MVCC snapshot reads (zero lock-manager traffic)
# against taDOM2 read locks under a background writer, at 1/16/64 reader
# goroutines, appending one JSON line per cell plus a readers=64 speedup
# summary to BENCH_snapshot.json.
bench-snapshot:
	$(GO) test ./internal/node/ -run XXX -bench BenchmarkSnapshotReads -benchtime 1s -benchmem | \
	awk -v date="$$(date -u +%Y-%m-%dT%H:%M:%SZ)" '/^BenchmarkSnapshotReads/ { \
		printf "{\"date\":\"%s\",\"bench\":\"%s\",\"iters\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}\n", date, $$1, $$2, $$3, $$5, $$7; \
		if ($$1 ~ /\/snapshot\/readers=64(-|$$)/) snap = $$3; \
		if ($$1 ~ /\/taDOM2\/readers=64(-|$$)/) lock = $$3 } \
		END { if (snap > 0 && lock > 0) \
			printf "{\"date\":\"%s\",\"bench\":\"SnapshotReadSpeedup/readers=64\",\"taDOM2_ns_per_op\":%s,\"snapshot_ns_per_op\":%s,\"speedup\":%.2f}\n", date, lock, snap, lock / snap }' \
	>> BENCH_snapshot.json

# bench-server sweeps the CLUSTER1 workload over every protocol at 1/16/64
# pooled connections against an in-process loopback xtcd, appending one JSON
# line per cell (throughput + request-latency percentiles) to
# BENCH_server.json. Every cell also runs the server-side Verify + LeakCheck
# audit, so this is an end-to-end integrity gate too.
bench-server:
	$(GO) run ./cmd/tamix -server self -out BENCH_server.json

# bench-server-scale is the higher-scale row: a 4x larger document and 4x
# longer timing scale than bench-server's defaults, on the two headline
# protocols at 16 and 64 connections. Rows land in the same
# BENCH_server.json (the doc_scale/time_scale fields tell them apart).
bench-server-scale:
	$(GO) run ./cmd/tamix -server self -doc 0.08 -time 0.008 \
		-protocols taDOM2,taDOM3+ -conns 16,64 -out BENCH_server.json

# bench-all runs every benchmark suite; any failing stage fails the target
# (pipefail, see SHELL above).
bench-all: bench-lock bench-wal bench-buffer bench-recovery bench-snapshot bench-server
